"""Multi-sketch wire frame (format version 3): one payload, many series.

The per-sketch binary format (:mod:`repro.serialization.binary_codec`,
versions 1–2) matches the paper's one-payload-per-metric flush.  A
high-cardinality agent instead tracks thousands of ``(metric, tags)`` series
per flush interval; shipping one payload per series would drown the backend
in per-payload overhead.  The frame format batches them: a small header
followed by length-prefixed entries, each carrying the series identity
(metric plus tags, as varint-length-prefixed UTF-8 strings) and one embedded
version-2 sketch payload.

Format (all multi-byte integers are varints unless noted)::

    magic        2 bytes   b"DD"
    version      varint    3
    n series     varint
    entries      n * entry

    entry:
      metric     varint length + UTF-8 bytes
      n tags     varint
      tags       n * (varint length + UTF-8 key, varint length + UTF-8 value)
      sketch len varint
      sketch     sketch-len bytes, a version-2 payload (decode_sketch)

Like the per-sketch codec, decoding is fuzz-hardened: truncated, bit-flipped,
or adversarial frames (absurd series/tag counts or lengths, duplicate
series, trailing bytes, embedded-sketch corruption) raise
:class:`~repro.exceptions.DeserializationError` — never an ``IndexError`` or
``MemoryError`` from the internals.  A JSON-object twin
(:func:`frame_to_dict` / :func:`frame_from_dict`) round-trips the same
content readably.

**Compression.**  At 10k series per frame the wire size is the scaling cost
of the service tier, and a frame full of delta-varint keys and float64
counts is highly redundant.  A frame may therefore travel inside a
*compressed envelope* (:func:`compress_frame`), a sniffable wrapper around
the unchanged inner frame-v3 bytes::

    magic          2 bytes   b"DZ"
    frame version  varint    3 (the version of the wrapped frame)
    compression    1 byte    0 = none, 1 = zlib, 2 = zstd
    raw length     varint    exact byte length of the decompressed frame
    body           rest      the (compressed) frame-v3 payload

:func:`decode_frame` dispatches on the leading magic, so every consumer of
frame bytes — the service push envelope, the segment log, the
:class:`~repro.service.FrameSpool`, the CLI — handles compressed and plain
frames interchangeably; an *uncompressed* frame is byte-identical to what
previous releases produced.  Decompression is bomb-guarded: the declared
raw length is checked against ``max_decompressed_bytes`` before any
inflation, the decompressor is capped at that length, and a body whose
actual size disagrees with the declaration is rejected — a hostile payload
can never cause a multi-GB allocation.  ``zlib`` is always available;
``zstd`` is a soft dependency (used only when the ``zstandard`` package —
or the stdlib ``compression.zstd`` of Python 3.14+ — is importable, see
:func:`zstd_available`).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DeserializationError, IllegalArgumentError, ReproError
from repro.registry.series import SeriesKey
from repro.serialization.encoding import VarintReader, encode_varint

_MAGIC = b"DD"
_COMPRESSED_MAGIC = b"DZ"
_FRAME_VERSION = 3

#: Wire codes of the compression byte inside a compressed frame envelope.
COMPRESSION_CODES = {"none": 0, "zlib": 1, "zstd": 2}
_CODE_TO_COMPRESSION = {code: name for name, code in COMPRESSION_CODES.items()}

#: Ceiling on the *declared* decompressed size of a compressed frame.  A
#: genuine 10k-series frame at 1% accuracy is a few MB; anything claiming
#: more than this is a decompression bomb (or corrupt) and is rejected
#: before any inflation happens.
MAX_DECOMPRESSED_FRAME_BYTES = 256 * 1024 * 1024

#: Ceiling on any single decoded string (metric, tag key, tag value).  Real
#: series names are tens of bytes; anything larger is a malformed length
#: field that would otherwise drive a giant slice.
_MAX_STRING_BYTES = 1 << 16

#: Minimum wire size of one frame entry: metric (>= 2 bytes), tag count,
#: sketch length, and the smallest well-formed version-2 sketch payload
#: (fixed header floats alone are 56 bytes).  Used to reject series counts
#: that cannot possibly fit in the remaining payload.
_MIN_ENTRY_BYTES = 2 + 1 + 1 + 60


def _load_zstd():
    """Return a ``(compress, decompress_capped)`` pair, or ``None``.

    ``decompress_capped(body, declared)`` must return at most ``declared + 1``
    bytes (so an over-long stream is detectable without inflating it fully)
    and raise :class:`DeserializationError` on malformed input.  Prefers the
    third-party ``zstandard`` package; falls back to the stdlib
    ``compression.zstd`` module of Python 3.14+.
    """
    try:
        import zstandard
    except ImportError:
        zstandard = None
    if zstandard is not None:

        def _compress(data: bytes) -> bytes:
            return zstandard.ZstdCompressor().compress(data)

        def _decompress(body: bytes, declared: int) -> bytes:
            decompressor = zstandard.ZstdDecompressor()
            try:
                return decompressor.decompress(body, max_output_size=declared + 1)
            except zstandard.ZstdError as error:
                raise DeserializationError(
                    f"malformed zstd frame body: {error}"
                ) from error

        return _compress, _decompress
    try:
        from compression import zstd as stdlib_zstd
    except ImportError:
        return None

    def _compress_stdlib(data: bytes) -> bytes:
        return stdlib_zstd.compress(data)

    def _decompress_stdlib(body: bytes, declared: int) -> bytes:
        decompressor = stdlib_zstd.ZstdDecompressor()
        try:
            raw = decompressor.decompress(body, max_length=declared + 1)
        except stdlib_zstd.ZstdError as error:
            raise DeserializationError(f"malformed zstd frame body: {error}") from error
        if not decompressor.eof or decompressor.unused_data:
            # Either the stream continues past the cap (a bomb) or carries
            # trailing garbage; both mean the declaration lied.
            raise DeserializationError(
                "zstd frame body does not match its declared raw length"
            )
        return raw

    return _compress_stdlib, _decompress_stdlib


def zstd_available() -> bool:
    """Whether the optional zstd codec can be used in this environment."""
    return _load_zstd() is not None


def frame_compressions() -> Tuple[str, ...]:
    """The compression names usable for encoding here, in wire-code order."""
    names = ["none", "zlib"]
    if zstd_available():
        names.append("zstd")
    return tuple(names)


def compress_frame(payload: bytes, compression: str = "zlib") -> bytes:
    """Wrap encoded frame-v3 bytes in a compressed envelope.

    ``compression`` is ``"none"`` (returns the input unchanged — a plain
    frame *is* the uncompressed wire form), ``"zlib"``, or ``"zstd"`` (only
    when :func:`zstd_available`).  The input must be a plain frame payload;
    re-compressing an already-compressed envelope is rejected so envelopes
    never nest.
    """
    payload = bytes(payload)
    if compression not in COMPRESSION_CODES:
        raise IllegalArgumentError(
            f"unknown frame compression {compression!r}; "
            f"expected one of {', '.join(sorted(COMPRESSION_CODES))}"
        )
    if payload[:2] != _MAGIC:
        raise IllegalArgumentError(
            "compress_frame expects plain frame-v3 bytes"
            + (" (already compressed)" if payload[:2] == _COMPRESSED_MAGIC else "")
        )
    if compression == "none":
        return payload
    if compression == "zlib":
        body = zlib.compress(payload, 6)
    else:
        codec = _load_zstd()
        if codec is None:
            raise IllegalArgumentError(
                "zstd compression requested but neither the 'zstandard' package "
                "nor stdlib 'compression.zstd' is importable"
            )
        body = codec[0](payload)
    return (
        _COMPRESSED_MAGIC
        + encode_varint(_FRAME_VERSION)
        + bytes((COMPRESSION_CODES[compression],))
        + encode_varint(len(payload))
        + body
    )


def frame_compression(payload: bytes) -> str:
    """Report which compression an encoded frame payload travels under.

    Returns ``"none"`` for a plain frame, the codec name for a compressed
    envelope; raises :class:`DeserializationError` when the payload starts
    with neither magic or the envelope header is malformed.
    """
    payload = bytes(payload)
    if payload[:2] == _MAGIC:
        return "none"
    if payload[:2] != _COMPRESSED_MAGIC:
        raise DeserializationError("payload does not start with a frame magic")
    reader = VarintReader(payload[2:])
    reader.read_varint()  # frame version, validated by the full decode
    code = reader.read_bytes(1)[0]
    if code not in _CODE_TO_COMPRESSION:
        raise DeserializationError(f"unknown frame compression code {code}")
    return _CODE_TO_COMPRESSION[code]


def decompress_frame(
    payload: bytes, max_decompressed_bytes: int = MAX_DECOMPRESSED_FRAME_BYTES
) -> bytes:
    """Unwrap a (possibly) compressed frame envelope to plain frame bytes.

    A plain frame passes through unchanged.  For a compressed envelope the
    declared raw length is validated against ``max_decompressed_bytes``
    *before* inflating, the decompressor output is capped, and any mismatch
    between declaration and actual content is rejected — the decompression
    bomb guard of the wire tier.

    Raises
    ------
    DeserializationError
        Wrong magic, unknown compression code, a declaration exceeding the
        guard, a zstd body without zstd support, a corrupt body, or a body
        whose decompressed size differs from the declaration.
    """
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise DeserializationError(
            f"frame payload must be bytes, got {type(payload).__name__}"
        )
    payload = bytes(payload)
    if payload[:2] == _MAGIC:
        return payload
    if payload[:2] != _COMPRESSED_MAGIC:
        raise DeserializationError("payload does not start with a frame magic")
    reader = VarintReader(payload[2:])
    version = reader.read_varint()
    if version != _FRAME_VERSION:
        raise DeserializationError(f"unsupported compressed-frame version {version}")
    code = reader.read_bytes(1)[0]
    if code not in _CODE_TO_COMPRESSION:
        raise DeserializationError(f"unknown frame compression code {code}")
    compression = _CODE_TO_COMPRESSION[code]
    declared = reader.read_varint()
    if declared > max_decompressed_bytes:
        raise DeserializationError(
            f"declared decompressed frame size {declared} exceeds the "
            f"{max_decompressed_bytes}-byte guard"
        )
    body = reader.read_bytes(reader.remaining)
    if compression == "none":
        raw = body
    elif compression == "zlib":
        decompressor = zlib.decompressobj()
        try:
            raw = decompressor.decompress(body, declared + 1)
        except zlib.error as error:
            raise DeserializationError(f"malformed zlib frame body: {error}") from error
        if not decompressor.eof or decompressor.unused_data or decompressor.unconsumed_tail:
            raise DeserializationError(
                "zlib frame body does not match its declared raw length"
            )
    else:
        codec = _load_zstd()
        if codec is None:
            raise DeserializationError(
                "frame is zstd-compressed but neither the 'zstandard' package "
                "nor stdlib 'compression.zstd' is importable"
            )
        raw = codec[1](body, declared)
    if len(raw) != declared:
        raise DeserializationError(
            f"decompressed frame size {len(raw)} differs from the declared {declared}"
        )
    if raw[:2] != _MAGIC:
        # Forbids nesting and catches envelopes around non-frame payloads.
        raise DeserializationError(
            "decompressed body is not a plain frame-v3 payload"
        )
    return raw


def _encode_string(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return encode_varint(len(encoded)) + encoded


def _read_string(reader: VarintReader, what: str) -> str:
    length = reader.read_varint()
    if length > _MAX_STRING_BYTES:
        raise DeserializationError(
            f"{what} length {length} exceeds the sanity limit {_MAX_STRING_BYTES}"
        )
    chunk = reader.read_bytes(length)
    try:
        return chunk.decode("utf-8")
    except UnicodeDecodeError as error:
        raise DeserializationError(f"{what} is not valid UTF-8") from error


def encode_frame(
    entries: Iterable[Tuple[SeriesKey, Any]], compression: str = "none"
) -> bytes:
    """Serialize ``(series_key, sketch)`` pairs into one frame payload.

    Accepts any iterable of pairs — a :class:`~repro.registry.SketchRegistry`
    iterates as one — and embeds each sketch via
    :func:`~repro.serialization.binary_codec.encode_sketch`.  With the
    default ``compression="none"`` the bytes are identical to what earlier
    releases produced; ``"zlib"``/``"zstd"`` wrap the frame in the
    compressed envelope described in the module docstring.
    """
    from repro.serialization.binary_codec import encode_sketch

    body = bytearray()
    count = 0
    for key, sketch in entries:
        key = SeriesKey.of(key)
        body += _encode_string(key.metric)
        body += encode_varint(len(key.tags))
        for tag_key, tag_value in key.tags:
            body += _encode_string(tag_key)
            body += _encode_string(tag_value)
        sketch_bytes = encode_sketch(sketch)
        body += encode_varint(len(sketch_bytes))
        body += sketch_bytes
        count += 1
    frame = _MAGIC + encode_varint(_FRAME_VERSION) + encode_varint(count) + bytes(body)
    if compression == "none":
        return frame
    return compress_frame(frame, compression)


def decode_frame(
    payload: bytes,
    sketch_cls: Any = None,
    max_decompressed_bytes: Optional[int] = None,
) -> List[Tuple[SeriesKey, Any]]:
    """Decode a (plain or compressed) frame into ``(series_key, sketch)`` pairs.

    Dispatches on the leading magic: a ``b"DZ"`` compressed envelope is
    unwrapped through the bomb-guarded :func:`decompress_frame` first
    (``max_decompressed_bytes`` tightens or relaxes the default guard), a
    plain ``b"DD"`` frame decodes directly.  ``sketch_cls`` is forwarded to
    :func:`~repro.serialization.binary_codec.decode_sketch` for every entry
    (by default, payloads carrying uniform-collapse stores auto-upgrade to
    :class:`~repro.core.UDDSketch`).

    Raises
    ------
    DeserializationError
        For any malformed payload: wrong magic or version, a compressed
        envelope failing its size declaration or guard, series/tag counts
        or string/sketch lengths that cannot fit the remaining bytes,
        invalid UTF-8, duplicate series, corrupt embedded sketches, or
        trailing bytes.
    """
    from repro.serialization.binary_codec import decode_sketch

    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise DeserializationError(
            f"frame payload must be bytes, got {type(payload).__name__}"
        )
    payload = bytes(payload)
    if payload[:2] == _COMPRESSED_MAGIC:
        payload = decompress_frame(
            payload,
            max_decompressed_bytes=(
                MAX_DECOMPRESSED_FRAME_BYTES
                if max_decompressed_bytes is None
                else max_decompressed_bytes
            ),
        )
    if payload[:2] != _MAGIC:
        raise DeserializationError("payload does not start with the DDSketch magic bytes")
    reader = VarintReader(payload[2:])
    entries: List[Tuple[SeriesKey, Any]] = []
    seen: set = set()
    try:
        version = reader.read_varint()
        if version != _FRAME_VERSION:
            raise DeserializationError(f"unsupported frame version {version}")
        num_series = reader.read_varint()
        if num_series > reader.remaining // _MIN_ENTRY_BYTES:
            raise DeserializationError(
                f"series count {num_series} cannot fit in the remaining payload"
            )
        for _ in range(num_series):
            metric = _read_string(reader, "metric name")
            num_tags = reader.read_varint()
            if num_tags > reader.remaining // 2:
                raise DeserializationError(
                    f"tag count {num_tags} cannot fit in the remaining payload"
                )
            tags = tuple(
                (_read_string(reader, "tag key"), _read_string(reader, "tag value"))
                for _ in range(num_tags)
            )
            sketch_length = reader.read_varint()
            if sketch_length > reader.remaining:
                raise DeserializationError(
                    f"sketch length {sketch_length} exceeds the remaining payload"
                )
            sketch_bytes = reader.read_bytes(sketch_length)
            key = SeriesKey(metric, tags)
            if key in seen:
                raise DeserializationError(f"duplicate series {key} in frame")
            seen.add(key)
            entries.append((key, decode_sketch(sketch_bytes, sketch_cls=sketch_cls)))
        if not reader.exhausted:
            raise DeserializationError(
                f"{reader.remaining} trailing bytes after the frame"
            )
    except DeserializationError:
        raise
    except ReproError as error:
        # Anything the library itself rejected (e.g. a malformed SeriesKey)
        # means the payload is bad.
        raise DeserializationError(f"malformed frame payload: {error}") from error
    return entries


def frame_to_dict(entries: Iterable[Tuple[SeriesKey, Any]]) -> Dict[str, Any]:
    """JSON-friendly twin of :func:`encode_frame`."""
    series = []
    for key, sketch in entries:
        key = SeriesKey.of(key)
        series.append(
            {
                "metric": key.metric,
                "tags": {tag_key: tag_value for tag_key, tag_value in key.tags},
                "sketch": sketch.to_dict(),
            }
        )
    return {"version": _FRAME_VERSION, "series": series}


def frame_from_dict(payload: Dict[str, Any]) -> List[Tuple[SeriesKey, Any]]:
    """Rebuild ``(series_key, sketch)`` pairs from :func:`frame_to_dict` output.

    Applies the same auto-upgrade rule as the binary path: a series whose
    positive store carries uniform-collapse state decodes to
    :class:`~repro.core.UDDSketch`.
    """
    from repro.core.ddsketch import BaseDDSketch
    from repro.core.uddsketch import UDDSketch

    if not isinstance(payload, dict):
        raise DeserializationError("expected a JSON object at the top level")
    if payload.get("version") != _FRAME_VERSION:
        raise DeserializationError(
            f"unsupported frame version {payload.get('version')!r}"
        )
    series = payload.get("series")
    if not isinstance(series, list):
        raise DeserializationError("the 'series' section must be an array")
    entries: List[Tuple[SeriesKey, Any]] = []
    seen: set = set()
    for entry in series:
        try:
            if not isinstance(entry, dict):
                raise DeserializationError("every series entry must be an object")
            tags = entry.get("tags", {})
            if not isinstance(tags, dict):
                raise DeserializationError("the 'tags' section must be an object")
            key = SeriesKey(entry["metric"], tuple(tags.items()))
            sketch_payload = entry["sketch"]
            if not isinstance(sketch_payload, dict):
                raise DeserializationError("the 'sketch' section must be an object")
            store_payload = sketch_payload.get("store")
            sketch_cls = BaseDDSketch
            if (
                isinstance(store_payload, dict)
                and store_payload.get("type") == "UniformCollapsingDenseStore"
            ):
                sketch_cls = UDDSketch
            sketch = sketch_cls.from_dict(sketch_payload)
        except DeserializationError:
            raise
        except ReproError as error:
            raise DeserializationError(f"malformed frame payload: {error}") from error
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise DeserializationError(f"malformed frame payload: {error}") from error
        if key in seen:
            raise DeserializationError(f"duplicate series {key} in frame")
        seen.add(key)
        entries.append((key, sketch))
    return entries
