"""Multi-sketch wire frame (format version 3): one payload, many series.

The per-sketch binary format (:mod:`repro.serialization.binary_codec`,
versions 1–2) matches the paper's one-payload-per-metric flush.  A
high-cardinality agent instead tracks thousands of ``(metric, tags)`` series
per flush interval; shipping one payload per series would drown the backend
in per-payload overhead.  The frame format batches them: a small header
followed by length-prefixed entries, each carrying the series identity
(metric plus tags, as varint-length-prefixed UTF-8 strings) and one embedded
version-2 sketch payload.

Format (all multi-byte integers are varints unless noted)::

    magic        2 bytes   b"DD"
    version      varint    3
    n series     varint
    entries      n * entry

    entry:
      metric     varint length + UTF-8 bytes
      n tags     varint
      tags       n * (varint length + UTF-8 key, varint length + UTF-8 value)
      sketch len varint
      sketch     sketch-len bytes, a version-2 payload (decode_sketch)

Like the per-sketch codec, decoding is fuzz-hardened: truncated, bit-flipped,
or adversarial frames (absurd series/tag counts or lengths, duplicate
series, trailing bytes, embedded-sketch corruption) raise
:class:`~repro.exceptions.DeserializationError` — never an ``IndexError`` or
``MemoryError`` from the internals.  A JSON-object twin
(:func:`frame_to_dict` / :func:`frame_from_dict`) round-trips the same
content readably.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.exceptions import DeserializationError, ReproError
from repro.registry.series import SeriesKey
from repro.serialization.encoding import VarintReader, encode_varint

_MAGIC = b"DD"
_FRAME_VERSION = 3

#: Ceiling on any single decoded string (metric, tag key, tag value).  Real
#: series names are tens of bytes; anything larger is a malformed length
#: field that would otherwise drive a giant slice.
_MAX_STRING_BYTES = 1 << 16

#: Minimum wire size of one frame entry: metric (>= 2 bytes), tag count,
#: sketch length, and the smallest well-formed version-2 sketch payload
#: (fixed header floats alone are 56 bytes).  Used to reject series counts
#: that cannot possibly fit in the remaining payload.
_MIN_ENTRY_BYTES = 2 + 1 + 1 + 60


def _encode_string(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return encode_varint(len(encoded)) + encoded


def _read_string(reader: VarintReader, what: str) -> str:
    length = reader.read_varint()
    if length > _MAX_STRING_BYTES:
        raise DeserializationError(
            f"{what} length {length} exceeds the sanity limit {_MAX_STRING_BYTES}"
        )
    chunk = reader.read_bytes(length)
    try:
        return chunk.decode("utf-8")
    except UnicodeDecodeError as error:
        raise DeserializationError(f"{what} is not valid UTF-8") from error


def encode_frame(entries: Iterable[Tuple[SeriesKey, Any]]) -> bytes:
    """Serialize ``(series_key, sketch)`` pairs into one frame payload.

    Accepts any iterable of pairs — a :class:`~repro.registry.SketchRegistry`
    iterates as one — and embeds each sketch via
    :func:`~repro.serialization.binary_codec.encode_sketch`.
    """
    from repro.serialization.binary_codec import encode_sketch

    body = bytearray()
    count = 0
    for key, sketch in entries:
        key = SeriesKey.of(key)
        body += _encode_string(key.metric)
        body += encode_varint(len(key.tags))
        for tag_key, tag_value in key.tags:
            body += _encode_string(tag_key)
            body += _encode_string(tag_value)
        sketch_bytes = encode_sketch(sketch)
        body += encode_varint(len(sketch_bytes))
        body += sketch_bytes
        count += 1
    return _MAGIC + encode_varint(_FRAME_VERSION) + encode_varint(count) + bytes(body)


def decode_frame(payload: bytes, sketch_cls: Any = None) -> List[Tuple[SeriesKey, Any]]:
    """Decode a frame into ``(series_key, sketch)`` pairs, in wire order.

    ``sketch_cls`` is forwarded to
    :func:`~repro.serialization.binary_codec.decode_sketch` for every entry
    (by default, payloads carrying uniform-collapse stores auto-upgrade to
    :class:`~repro.core.UDDSketch`).

    Raises
    ------
    DeserializationError
        For any malformed payload: wrong magic or version, series/tag counts
        or string/sketch lengths that cannot fit the remaining bytes,
        invalid UTF-8, duplicate series, corrupt embedded sketches, or
        trailing bytes.
    """
    from repro.serialization.binary_codec import decode_sketch

    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise DeserializationError(
            f"frame payload must be bytes, got {type(payload).__name__}"
        )
    payload = bytes(payload)
    if payload[:2] != _MAGIC:
        raise DeserializationError("payload does not start with the DDSketch magic bytes")
    reader = VarintReader(payload[2:])
    entries: List[Tuple[SeriesKey, Any]] = []
    seen: set = set()
    try:
        version = reader.read_varint()
        if version != _FRAME_VERSION:
            raise DeserializationError(f"unsupported frame version {version}")
        num_series = reader.read_varint()
        if num_series > reader.remaining // _MIN_ENTRY_BYTES:
            raise DeserializationError(
                f"series count {num_series} cannot fit in the remaining payload"
            )
        for _ in range(num_series):
            metric = _read_string(reader, "metric name")
            num_tags = reader.read_varint()
            if num_tags > reader.remaining // 2:
                raise DeserializationError(
                    f"tag count {num_tags} cannot fit in the remaining payload"
                )
            tags = tuple(
                (_read_string(reader, "tag key"), _read_string(reader, "tag value"))
                for _ in range(num_tags)
            )
            sketch_length = reader.read_varint()
            if sketch_length > reader.remaining:
                raise DeserializationError(
                    f"sketch length {sketch_length} exceeds the remaining payload"
                )
            sketch_bytes = reader.read_bytes(sketch_length)
            key = SeriesKey(metric, tags)
            if key in seen:
                raise DeserializationError(f"duplicate series {key} in frame")
            seen.add(key)
            entries.append((key, decode_sketch(sketch_bytes, sketch_cls=sketch_cls)))
        if not reader.exhausted:
            raise DeserializationError(
                f"{reader.remaining} trailing bytes after the frame"
            )
    except DeserializationError:
        raise
    except ReproError as error:
        # Anything the library itself rejected (e.g. a malformed SeriesKey)
        # means the payload is bad.
        raise DeserializationError(f"malformed frame payload: {error}") from error
    return entries


def frame_to_dict(entries: Iterable[Tuple[SeriesKey, Any]]) -> Dict[str, Any]:
    """JSON-friendly twin of :func:`encode_frame`."""
    series = []
    for key, sketch in entries:
        key = SeriesKey.of(key)
        series.append(
            {
                "metric": key.metric,
                "tags": {tag_key: tag_value for tag_key, tag_value in key.tags},
                "sketch": sketch.to_dict(),
            }
        )
    return {"version": _FRAME_VERSION, "series": series}


def frame_from_dict(payload: Dict[str, Any]) -> List[Tuple[SeriesKey, Any]]:
    """Rebuild ``(series_key, sketch)`` pairs from :func:`frame_to_dict` output.

    Applies the same auto-upgrade rule as the binary path: a series whose
    positive store carries uniform-collapse state decodes to
    :class:`~repro.core.UDDSketch`.
    """
    from repro.core.ddsketch import BaseDDSketch
    from repro.core.uddsketch import UDDSketch

    if not isinstance(payload, dict):
        raise DeserializationError("expected a JSON object at the top level")
    if payload.get("version") != _FRAME_VERSION:
        raise DeserializationError(
            f"unsupported frame version {payload.get('version')!r}"
        )
    series = payload.get("series")
    if not isinstance(series, list):
        raise DeserializationError("the 'series' section must be an array")
    entries: List[Tuple[SeriesKey, Any]] = []
    seen: set = set()
    for entry in series:
        try:
            if not isinstance(entry, dict):
                raise DeserializationError("every series entry must be an object")
            tags = entry.get("tags", {})
            if not isinstance(tags, dict):
                raise DeserializationError("the 'tags' section must be an object")
            key = SeriesKey(entry["metric"], tuple(tags.items()))
            sketch_payload = entry["sketch"]
            if not isinstance(sketch_payload, dict):
                raise DeserializationError("the 'sketch' section must be an object")
            store_payload = sketch_payload.get("store")
            sketch_cls = BaseDDSketch
            if (
                isinstance(store_payload, dict)
                and store_payload.get("type") == "UniformCollapsingDenseStore"
            ):
                sketch_cls = UDDSketch
            sketch = sketch_cls.from_dict(sketch_payload)
        except DeserializationError:
            raise
        except ReproError as error:
            raise DeserializationError(f"malformed frame payload: {error}") from error
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise DeserializationError(f"malformed frame payload: {error}") from error
        if key in seen:
            raise DeserializationError(f"duplicate series {key} in frame")
        seen.add(key)
        entries.append((key, sketch))
    return entries
