"""Optional compiled (C) backend for the columnar ingest kernel.

This is a *soft dependency*: the backend compiles ``_kernel.c`` on first use
with whatever C compiler the host provides (``$CC``, ``cc``, ``gcc`` or
``clang``) and loads it through :mod:`ctypes` — no build step, no installed
extension module, no new Python package.  When no compiler is available (or
the host is big-endian, or the compiled library fails its load-time
self-test against the NumPy reference backend) the kernel facade falls back
to :class:`repro.kernel.reference.NumpyBackend` automatically.

Bit-exactness strategy
----------------------

The C side (see ``_kernel.c``) restricts itself to correctly-rounded
IEEE-754 operations and input-order accumulation, compiled with
``-ffp-contract=off`` so no multiply-add fusion can change polynomial
rounding.  The one transcendental — the logarithmic mapping's ``log`` —
stays on the NumPy side: libm's ``log`` and NumPy's vectorized ``log``
disagree in the last ulp on some inputs, so this backend feeds a
precomputed ``numpy.log(|values|)`` array into the C pass instead of calling
``log`` in C.  Anything order-sensitive (pairwise ``numpy.sum`` totals,
summaries) never runs here at all; it lives in the shared segment layer.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.kernel.reference import NumpyBackend
from repro.kernel.segments import Selection, SignSplit

#: Environment variable overriding where compiled kernels are cached.
CACHE_DIR_ENV = "REPRO_KERNEL_CACHE"

_MODES = {"log": 0, "linear": 1, "quadratic": 2, "cubic": 3}

#: Worst-case wire bytes per encoded bucket: a 10-byte varint + 8-byte float.
_MAX_PAIR_BYTES = 18

_COMPILE_FLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math"]

#: Cached load attempt: ``None`` until tried, then ``(backend, reason)`` with
#: exactly one of the two set.
_LOAD_RESULT: Optional[Tuple[Optional["NativeBackend"], Optional[str]]] = None


class NativeKernelUnavailable(RuntimeError):
    """Raised when the native backend is requested but cannot be provided."""


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernel"


def _find_compiler() -> Optional[str]:
    candidates = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates += ["cc", "gcc", "clang"]
    for candidate in candidates:
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _compile_and_load() -> ctypes.CDLL:
    """Compile ``_kernel.c`` (cached by source hash) and load it via ctypes."""
    if sys.byteorder != "little":
        raise NativeKernelUnavailable(
            "the native kernel's wire codec requires a little-endian host"
        )
    source = Path(__file__).with_name("_kernel.c")
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as error:
        raise NativeKernelUnavailable(f"kernel source unreadable: {error}") from error
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    cache = _cache_dir()
    library = cache / f"repro_kernel_{digest}.so"
    if not library.is_file():
        compiler = _find_compiler()
        if compiler is None:
            raise NativeKernelUnavailable(
                "no C compiler found (set $CC or install cc/gcc/clang)"
            )
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise NativeKernelUnavailable(f"cannot create cache dir {cache}: {error}") from error
        scratch = cache / f".{library.name}.{os.getpid()}.tmp"
        command = [compiler, *_COMPILE_FLAGS, str(source), "-o", str(scratch), "-lm"]
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, timeout=120, check=False
            )
        except (OSError, subprocess.TimeoutExpired) as error:
            raise NativeKernelUnavailable(f"kernel compilation failed to run: {error}") from error
        if result.returncode != 0:
            tail = (result.stderr or result.stdout or "").strip().splitlines()[-3:]
            raise NativeKernelUnavailable(
                "kernel compilation failed: " + " | ".join(tail or ["(no output)"])
            )
        os.replace(scratch, library)  # atomic publish for concurrent processes
    try:
        lib = ctypes.CDLL(str(library))
    except OSError as error:
        raise NativeKernelUnavailable(f"compiled kernel failed to load: {error}") from error
    _declare(lib)
    return lib


def _declare(lib: ctypes.CDLL) -> None:
    """Attach ctypes signatures so argument marshalling is explicit."""
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    lib.repro_compute_keys.argtypes = [
        p, p, i64, ctypes.c_int32, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, p, p, p,
    ]
    lib.repro_compute_keys.restype = None
    lib.repro_bin_select.argtypes = [p, p, ctypes.c_int8, i64, p, i64, i64, p]
    lib.repro_bin_select.restype = None
    lib.repro_bin_grouped.argtypes = [p, p, i64, p, i64, i64, p]
    lib.repro_bin_grouped.restype = None
    lib.repro_encode_pairs.argtypes = [p, p, i64, p]
    lib.repro_encode_pairs.restype = i64
    lib.repro_decode_pairs.argtypes = [p, i64, i64, i64, p, p]
    lib.repro_decode_pairs.restype = i64


def _ptr(array: Optional["np.ndarray"]):
    return None if array is None else ctypes.c_void_p(array.ctypes.data)


class NativeSignSplit(SignSplit):
    """Sign split backed by the fused C key pass (full keys + sign flags)."""

    __slots__ = ("keys_full", "flags", "_stats", "_masks", "_keys")

    def __init__(self, values, keys, flags, stats) -> None:
        super().__init__(values, int(stats[0]), int(stats[1]))
        self.keys_full = keys
        self.flags = flags
        self._stats = stats
        self._masks: dict = {}
        self._keys: dict = {}

    def mask_for(self, sign: int) -> "np.ndarray":
        """Boolean mask derived lazily from the C pass's sign flags."""
        mask = self._masks.get(sign)
        if mask is None:
            mask = self.flags == sign
            self._masks[sign] = mask
        return mask

    def keys_for(self, sign: int) -> "np.ndarray":
        """Compressed keys, materialized lazily from the full key array."""
        keys = self._keys.get(sign)
        if keys is None:
            keys = self.keys_full[self.mask_for(sign)]
            self._keys[sign] = keys
        return keys

    def key_range(self, sign: int) -> Tuple[int, int]:
        """Per-sign key extrema tracked by the C pass — no extra reduction."""
        if sign > 0:
            return int(self._stats[2]), int(self._stats[3])
        return int(self._stats[4]), int(self._stats[5])


class NativeBackend:
    """Kernel backend dispatching the inner loops to the compiled library.

    Mappings advertise their kernel form through
    ``KeyMapping._kernel_transform``; a mapping without one (a user subclass,
    say) is transparently delegated to the NumPy reference backend, so
    correctness never depends on the C side recognizing the mapping.
    """

    name = "native"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self._reference = NumpyBackend()

    def split_keys(self, mapping, values: "np.ndarray") -> SignSplit:
        """Sign-split + key computation in one fused C pass."""
        spec = mapping._kernel_transform()
        if spec is None:
            return self._reference.split_keys(mapping, values)
        mode_name, multiplier, key_offset = spec
        mode = _MODES[mode_name]
        values = np.ascontiguousarray(values, dtype=np.float64)
        logs = None
        if mode == _MODES["log"]:
            # numpy's log, not libm's: they differ in the last ulp on some
            # inputs, and the reference backend's keys come from numpy.
            with np.errstate(divide="ignore"):
                logs = np.log(np.abs(values))
        n = values.size
        keys = np.empty(n, dtype=np.int64)
        flags = np.empty(n, dtype=np.int8)
        stats = np.empty(6, dtype=np.int64)
        self._lib.repro_compute_keys(
            _ptr(values), _ptr(logs), n, mode,
            float(multiplier), float(key_offset), float(mapping.min_possible),
            _ptr(keys), _ptr(flags), _ptr(stats),
        )
        return NativeSignSplit(values, keys, flags, stats)

    def bin_selection(self, selection: Selection, lo: int, hi: int) -> "np.ndarray":
        """Window binning in C; unit-weight selections bin straight from the
        flagged full-batch arrays without materializing masks or compressed
        keys."""
        counts = np.zeros(hi - lo + 1, dtype=np.float64)
        split = selection.split
        if selection.weights is None and isinstance(split, NativeSignSplit):
            self._lib.repro_bin_select(
                _ptr(split.keys_full), _ptr(split.flags),
                ctypes.c_int8(selection.sign), split.size,
                None, lo, hi, _ptr(counts),
            )
            return counts
        keys = np.ascontiguousarray(selection.keys, dtype=np.int64)
        weights = selection.weights
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
        self._lib.repro_bin_select(
            _ptr(keys), None, ctypes.c_int8(0), keys.size,
            _ptr(weights), lo, hi, _ptr(counts),
        )
        return counts

    def bin_grouped(
        self,
        group_indices: "np.ndarray",
        keys: "np.ndarray",
        weights,
        num_groups: int,
        offset: int,
        span: int,
        scratch=None,
    ) -> "np.ndarray":
        """Grouped binning in C — no flat-index temporary at all, so the
        ``scratch`` buffer is simply unused here (results are identical)."""
        group_indices = np.ascontiguousarray(group_indices, dtype=np.int64)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
        cells = np.zeros(num_groups * span, dtype=np.float64)
        self._lib.repro_bin_grouped(
            _ptr(group_indices), _ptr(keys), keys.size,
            _ptr(weights), offset, span, _ptr(cells),
        )
        return cells.reshape(num_groups, span)

    def encode_bucket_pairs(self, deltas: "np.ndarray", counts: "np.ndarray") -> bytes:
        """Varint/zigzag bucket encoding in C; byte-identical to the loop."""
        deltas = np.ascontiguousarray(deltas, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.float64)
        out = np.empty(deltas.size * _MAX_PAIR_BYTES, dtype=np.uint8)
        written = self._lib.repro_encode_pairs(
            _ptr(deltas), _ptr(counts), deltas.size, _ptr(out)
        )
        return out[: int(written)].tobytes()

    def decode_bucket_pairs(self, reader, num_buckets: int):
        """Varint/zigzag bucket decoding in C.

        Any anomaly (truncation, over-long varint, delta outside ``int64``)
        makes the C pass bail out *without* touching the reader, and the
        pure-Python loop re-parses to raise the exact historical exception.
        """
        payload = reader._payload
        buffer = np.frombuffer(payload, dtype=np.uint8)
        deltas = np.empty(num_buckets, dtype=np.int64)
        counts = np.empty(num_buckets, dtype=np.float64)
        end = self._lib.repro_decode_pairs(
            _ptr(buffer), len(payload), reader._offset, num_buckets,
            _ptr(deltas), _ptr(counts),
        )
        if end < 0:
            return self._reference.decode_bucket_pairs(reader, num_buckets)
        reader._offset = int(end)
        return deltas, counts

    def encode_proto_bins(self, keys: "np.ndarray", counts: "np.ndarray") -> bytes:
        """DataDog-proto map entries composed around the C varint pass.

        The ``(zigzag key, float64 count)`` pair bytes come from
        :meth:`encode_bucket_pairs` (the C hot loop); the proto tag/length
        framing around them is the same shared composition the reference
        backend uses, so both backends emit identical proto bytes by
        construction.
        """
        from repro.kernel.reference import compose_proto_bins

        keys = np.ascontiguousarray(keys, dtype=np.int64)
        return compose_proto_bins(self.encode_bucket_pairs(keys, counts), keys)


def _self_test(backend: NativeBackend) -> None:
    """Verify the compiled kernel against the NumPy reference at load time.

    Covers all four mapping families, both signs, zeros, denormal-adjacent
    magnitudes, window clipping, grouped binning, and a codec round trip.
    A failure raises :class:`NativeKernelUnavailable` so the facade falls
    back to NumPy rather than ever serving non-reference bytes.
    """
    from repro.mapping import (
        CubicallyInterpolatedMapping,
        LinearlyInterpolatedMapping,
        LogarithmicMapping,
        QuadraticallyInterpolatedMapping,
    )
    from repro.serialization.encoding import VarintReader

    reference = NumpyBackend()
    rng = np.random.default_rng(20260808)
    values = np.concatenate([
        rng.uniform(-1e6, 1e6, 512),
        np.array([0.0, 1e-310, -1e-310, 1e300, -1e300, 1.0, -1.0, 0.5, 2.0]),
        10.0 ** rng.uniform(-280, 280, 256) * np.where(rng.random(256) < 0.5, -1.0, 1.0),
    ])
    mappings = [
        LogarithmicMapping(0.01),
        LogarithmicMapping(0.003, offset=7.0),
        LinearlyInterpolatedMapping(0.01),
        QuadraticallyInterpolatedMapping(0.02),
        CubicallyInterpolatedMapping(0.01),
    ]
    for mapping in mappings:
        native_split = backend.split_keys(mapping, values)
        ref_split = reference.split_keys(mapping, values)
        for sign in (1, -1):
            if not np.array_equal(native_split.keys_for(sign), ref_split.keys_for(sign)):
                raise NativeKernelUnavailable(
                    f"self-test: key mismatch for {type(mapping).__name__} sign {sign}"
                )
            if native_split.key_range(sign) != ref_split.key_range(sign):
                raise NativeKernelUnavailable("self-test: key-range mismatch")
            native_sel = native_split.selection(sign)
            ref_sel = ref_split.selection(sign)
            lo, hi = ref_sel.min_key + 3, ref_sel.max_key - 3
            if lo > hi:
                lo, hi = ref_sel.min_key, ref_sel.max_key
            if not np.array_equal(
                backend.bin_selection(native_sel, lo, hi),
                np.asarray(reference.bin_selection(ref_sel, lo, hi), dtype=np.float64),
            ):
                raise NativeKernelUnavailable("self-test: bin_selection mismatch")
    groups = rng.integers(0, 8, 512)
    keys = rng.integers(-50, 50, 512)
    weights = rng.integers(1, 9, 512) / 4.0
    for w in (None, weights):
        native_cells = backend.bin_grouped(groups, keys, w, 8, -50, 101)
        ref_cells = reference.bin_grouped(groups, keys, w, 8, -50, 101)
        if not np.array_equal(native_cells, np.asarray(ref_cells, dtype=np.float64)):
            raise NativeKernelUnavailable("self-test: bin_grouped mismatch")
    deltas = np.concatenate([
        rng.integers(-(2**40), 2**40, 64),
        np.array([0, -1, 1, np.iinfo(np.int64).min, np.iinfo(np.int64).max]),
    ]).astype(np.int64)
    counts = rng.random(deltas.size)
    encoded_native = backend.encode_bucket_pairs(deltas, counts)
    encoded_ref = reference.encode_bucket_pairs(deltas, counts)
    if encoded_native != encoded_ref:
        raise NativeKernelUnavailable("self-test: codec encode mismatch")
    out_deltas, out_counts = backend.decode_bucket_pairs(
        VarintReader(encoded_native), deltas.size
    )
    if not (np.array_equal(out_deltas, deltas) and np.array_equal(out_counts, counts)):
        raise NativeKernelUnavailable("self-test: codec round-trip mismatch")


def load_native_backend() -> NativeBackend:
    """Compile/load/self-test the native backend (cached per process).

    Raises :class:`NativeKernelUnavailable` with a human-readable reason
    when the backend cannot be provided; the reason is surfaced through
    :func:`repro.kernel.backend_info` and the ``--version`` diagnostics.
    """
    global _LOAD_RESULT
    if _LOAD_RESULT is None:
        try:
            backend = NativeBackend(_compile_and_load())
            _self_test(backend)
            _LOAD_RESULT = (backend, None)
        except NativeKernelUnavailable as error:
            _LOAD_RESULT = (None, str(error))
        except Exception as error:  # defensive: never break ingest over perf
            _LOAD_RESULT = (None, f"unexpected native-kernel failure: {error!r}")
    backend, reason = _LOAD_RESULT
    if backend is None:
        raise NativeKernelUnavailable(reason or "native kernel unavailable")
    return backend


def availability() -> Tuple[bool, Optional[str]]:
    """Return ``(available, reason_if_not)`` without raising."""
    try:
        load_native_backend()
        return True, None
    except NativeKernelUnavailable as error:
        return False, str(error)
