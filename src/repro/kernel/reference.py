"""The pure-NumPy reference backend of the columnar ingest kernel.

This backend *is* the semantics: every operation here performs exactly the
array expressions the pre-kernel code paths performed (mask comparisons,
``key_batch`` per sign, ``clip`` + ``bincount`` binning, the flat-index
grouped ``bincount``, and the per-bucket varint codec loops), so refactoring
the sketch/store layers onto the kernel changed no observable byte anywhere.
The optional native backend (:mod:`repro.kernel.native`) is validated against
this one — at load time by a self-test and continuously by the
``tests/test_kernel_backends.py`` property suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernel.segments import (
    NEGATIVE,
    POSITIVE,
    Selection,
    SignSplit,
)


class NumpySignSplit(SignSplit):
    """Eager mask-based sign split (the historical ``add_batch`` pass)."""

    __slots__ = ("_mapping", "_masks", "_keys", "_ranges")

    def __init__(self, mapping, values: "np.ndarray") -> None:
        min_possible = mapping.min_possible
        positive_mask = values > min_possible
        negative_mask = values < -min_possible
        super().__init__(
            values,
            int(np.count_nonzero(positive_mask)),
            int(np.count_nonzero(negative_mask)),
        )
        self._mapping = mapping
        self._masks = {POSITIVE: positive_mask, NEGATIVE: negative_mask}
        self._keys: dict = {}
        self._ranges: dict = {}

    def mask_for(self, sign: int) -> "np.ndarray":
        """Full-length boolean mask of the samples with the given sign."""
        return self._masks[sign]

    def keys_for(self, sign: int) -> "np.ndarray":
        """Compressed keys via one :meth:`KeyMapping.key_batch` call per sign."""
        keys = self._keys.get(sign)
        if keys is None:
            selected = self.values[self._masks[sign]]
            if sign == NEGATIVE:
                selected = -selected
            keys = self._mapping.key_batch(selected)
            self._keys[sign] = keys
        return keys

    def key_range(self, sign: int) -> Tuple[int, int]:
        """``(min_key, max_key)`` from the compressed key array."""
        cached = self._ranges.get(sign)
        if cached is None:
            keys = self.keys_for(sign)
            cached = (int(keys.min()), int(keys.max()))
            self._ranges[sign] = cached
        return cached


class NumpyBackend:
    """Kernel backend implemented entirely with NumPy array expressions."""

    name = "numpy"

    def split_keys(self, mapping, values: "np.ndarray") -> NumpySignSplit:
        """Sign-split a value batch and prepare per-sign key computation."""
        return NumpySignSplit(mapping, values)

    def bin_selection(self, selection: Selection, lo: int, hi: int) -> "np.ndarray":
        """Bin a selection into the contiguous key window ``[lo, hi]``.

        Out-of-window keys clip onto the boundary cells — exactly where a
        bounded store's per-item path folds them.  ``bincount`` accumulates
        in input order, so fractional weights sum in the same order as a
        per-item loop.
        """
        indices = np.clip(selection.keys, lo, hi) - lo
        return np.bincount(indices, weights=selection.weights, minlength=hi - lo + 1)

    def bin_grouped(
        self,
        group_indices: "np.ndarray",
        keys: "np.ndarray",
        weights: Optional["np.ndarray"],
        num_groups: int,
        offset: int,
        span: int,
        scratch=None,
    ) -> "np.ndarray":
        """One combined ``bincount`` over the flat index ``group * span + key``.

        ``scratch`` (a :class:`repro.store.grouped.GroupedScratch`) lets a
        single-writer caller reuse the batch-sized flat-index temporary; the
        in-place arithmetic produces bit-identical indices.
        """
        if scratch is None:
            flat = group_indices * span + (keys - offset)
        else:
            flat = scratch.flat_index(keys.size)
            np.multiply(group_indices, span, out=flat)
            np.add(flat, keys, out=flat)
            if offset:
                flat -= offset
        cells = np.bincount(flat, weights=weights, minlength=num_groups * span)
        return cells.reshape(num_groups, span)

    def encode_bucket_pairs(self, deltas: "np.ndarray", counts: "np.ndarray") -> bytes:
        """Encode ``(zig-zag delta, float64 count)`` pairs to wire bytes."""
        from repro.serialization.encoding import encode_float, encode_zigzag

        out = bytearray()
        for delta, count in zip(deltas.tolist(), counts.tolist()):
            out += encode_zigzag(delta)
            out += encode_float(count)
        return bytes(out)

    def decode_bucket_pairs(self, reader, num_buckets: int) -> Tuple["np.ndarray", "np.ndarray"]:
        """Decode ``num_buckets`` wire pairs, advancing ``reader``.

        Raises the codec's exact error contract
        (:class:`~repro.exceptions.DeserializationError` on truncated or
        over-long varints, ``OverflowError`` on deltas outside ``int64``)
        because it *is* the historical per-bucket loop.
        """
        deltas = np.empty(num_buckets, dtype=np.int64)
        counts = np.empty(num_buckets, dtype=np.float64)
        for index in range(num_buckets):
            deltas[index] = reader.read_zigzag()
            counts[index] = reader.read_float()
        return deltas, counts

    def encode_proto_bins(self, keys: "np.ndarray", counts: "np.ndarray") -> bytes:
        """Encode sparse bins as DataDog-proto ``binCounts`` map entries."""
        return compose_proto_bins(self.encode_bucket_pairs(keys, counts), keys)


def zigzag_byte_lengths(keys: "np.ndarray") -> "np.ndarray":
    """Per-key byte length of the zig-zag varint encoding, vectorized.

    Mirrors :func:`repro.serialization.encoding.encode_zigzag` exactly: the
    signed key is zig-zag mapped to an unsigned integer, whose base-128
    varint occupies one byte per started 7-bit group.
    """
    keys = np.asarray(keys, dtype=np.int64)
    mapped = ((keys << 1) ^ (keys >> 63)).view(np.uint64)
    lengths = np.ones(keys.size, dtype=np.int64)
    mapped = mapped >> np.uint64(7)
    while mapped.any():
        lengths += mapped != 0
        mapped = mapped >> np.uint64(7)
    return lengths


def compose_proto_bins(pairs: bytes, keys: "np.ndarray") -> bytes:
    """Assemble proto map entries around pre-encoded ``(zigzag, float)`` pairs.

    ``pairs`` is the output of ``encode_bucket_pairs(keys, counts)`` — the
    concatenation of ``zigzag(key) + float64(count)`` per bin.  Each bin
    becomes one ``binCounts`` map-entry submessage of the DataDog ``Store``
    proto: field 1 (``sint32`` key, tag ``0x08``) followed by field 2
    (``double`` count, tag ``0x11``), wrapped in a length-delimited field-1
    tag (``0x0a``).  Shared by both kernel backends, so the proto bytes are
    identical by construction wherever the bucket pairs are (which
    ``tests/test_kernel_backends.py`` pins).
    """
    from repro.serialization.encoding import encode_varint

    lengths = zigzag_byte_lengths(keys)
    out = bytearray()
    offset = 0
    view = memoryview(pairs)
    for zigzag_length in lengths.tolist():
        pair_length = zigzag_length + 8
        # 1 tag byte before the key, 1 before the count.
        out += b"\x0a" + encode_varint(pair_length + 2)
        out += b"\x08" + bytes(view[offset : offset + zigzag_length])
        out += b"\x11" + bytes(view[offset + zigzag_length : offset + pair_length])
        offset += pair_length
    return bytes(out)
