/* Native columnar ingest kernel for the DDSketch reproduction.
 *
 * Compiled on demand by repro/kernel/native.py with
 *     cc -O2 -fPIC -shared -ffp-contract=off -fno-fast-math _kernel.c -lm
 * and loaded through ctypes.  Every function must be bit-exact with the
 * NumPy reference backend (repro/kernel/reference.py):
 *
 *   - only correctly-rounded IEEE-754 operations are used (+, -, *, /,
 *     ceil, frexp); -ffp-contract=off forbids the compiler from fusing
 *     multiply-adds, which would change polynomial rounding;
 *   - the logarithmic mapping consumes a *precomputed* numpy.log array
 *     (libm's log and numpy's SIMD log differ in the last ulp on some
 *     inputs), so the one transcendental stays on the numpy side;
 *   - all accumulation loops run in input order, matching numpy.bincount's
 *     sequential semantics (order-sensitive pairwise reductions such as
 *     numpy.sum never run here - they stay in shared Python code).
 *
 * The float64 wire codec assumes a little-endian host; native.py refuses to
 * load this library on big-endian machines.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

#define MODE_LOG 0
#define MODE_LINEAR 1
#define MODE_QUADRATIC 2
#define MODE_CUBIC 3

/* Polynomial log2 approximations over one octave; identical arithmetic to
 * the _approx_batch methods in repro/mapping/interpolated.py. */
static double approx_poly(int32_t mode, double significand)
{
    double t = significand - 1.0;
    if (mode == MODE_LINEAR)
        return t;
    if (mode == MODE_QUADRATIC)
        return t * (4.0 - t) / 3.0;
    {
        const double a = 6.0 / 35.0;
        const double b = -3.0 / 5.0;
        const double c = 10.0 / 7.0;
        return ((a * t + b) * t + c) * t;
    }
}

/* Fused sign split + bucket-key computation.
 *
 * values:   n float64 samples (any sign).
 * logs:     precomputed log(|values|) when mode == MODE_LOG, else unused.
 * keys:     out, one int64 bucket key per sample (magnitude key for
 *           negatives; 0 for zero-bucket samples).
 * flags:    out, one int8 sign per sample (+1 / -1 / 0).
 * stats:    out[6] = {num_pos, num_neg, pos_min, pos_max, neg_min, neg_max}.
 */
void repro_compute_keys(const double *values, const double *logs, int64_t n,
                        int32_t mode, double multiplier, double key_offset,
                        double min_possible, int64_t *keys, int8_t *flags,
                        int64_t *stats)
{
    int64_t npos = 0, nneg = 0;
    int64_t pmin = INT64_MAX, pmax = INT64_MIN;
    int64_t nmin = INT64_MAX, nmax = INT64_MIN;
    for (int64_t i = 0; i < n; i++) {
        double v = values[i];
        double mag;
        int8_t flag;
        if (v > min_possible) {
            flag = 1;
            mag = v;
        } else if (v < -min_possible) {
            flag = -1;
            mag = -v;
        } else {
            flags[i] = 0;
            keys[i] = 0;
            continue;
        }
        double approx;
        if (mode == MODE_LOG) {
            approx = logs[i];
        } else {
            int exponent;
            double mantissa = frexp(mag, &exponent);
            approx = (double)(exponent - 1) + approx_poly(mode, 2.0 * mantissa);
        }
        double keyd = ceil(approx * multiplier);
        if (key_offset != 0.0)
            keyd += key_offset;
        int64_t key = (int64_t)keyd; /* same truncation as ndarray.astype */
        keys[i] = key;
        flags[i] = flag;
        if (flag == 1) {
            npos++;
            if (key < pmin) pmin = key;
            if (key > pmax) pmax = key;
        } else {
            nneg++;
            if (key < nmin) nmin = key;
            if (key > nmax) nmax = key;
        }
    }
    stats[0] = npos;
    stats[1] = nneg;
    stats[2] = pmin;
    stats[3] = pmax;
    stats[4] = nmin;
    stats[5] = nmax;
}

/* Bin keys into a contiguous window [lo, hi], clipping out-of-window keys
 * onto the boundary cells.  With flags != NULL only samples whose flag
 * equals `want` participate (the fused unit-weight path); with flags == NULL
 * every sample does (pre-compressed keys).  counts must be zeroed by the
 * caller and hold hi - lo + 1 cells.  Accumulation order matches
 * numpy.bincount (input order). */
void repro_bin_select(const int64_t *keys, const int8_t *flags, int8_t want,
                      int64_t n, const double *weights, int64_t lo, int64_t hi,
                      double *counts)
{
    for (int64_t i = 0; i < n; i++) {
        if (flags && flags[i] != want)
            continue;
        int64_t k = keys[i];
        if (k < lo)
            k = lo;
        else if (k > hi)
            k = hi;
        counts[k - lo] += weights ? weights[i] : 1.0;
    }
}

/* Grouped binning: cells[group * span + key - offset] += weight, in input
 * order.  cells must be zeroed by the caller (num_groups * span doubles);
 * the caller guarantees offset <= key < offset + span. */
void repro_bin_grouped(const int64_t *groups, const int64_t *keys, int64_t n,
                       const double *weights, int64_t offset, int64_t span,
                       double *cells)
{
    for (int64_t i = 0; i < n; i++)
        cells[groups[i] * span + (keys[i] - offset)] += weights ? weights[i] : 1.0;
}

/* Encode n (zig-zag varint delta, little-endian float64 count) pairs into
 * out (caller allocates >= n * 18 bytes); returns the bytes written.
 * Byte-identical to encode_zigzag/encode_float in serialization/encoding.py. */
int64_t repro_encode_pairs(const int64_t *deltas, const double *counts,
                           int64_t n, uint8_t *out)
{
    int64_t pos = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t v = deltas[i];
        uint64_t z = ((uint64_t)v << 1) ^ (uint64_t)(v >> 63);
        for (;;) {
            uint8_t byte = (uint8_t)(z & 0x7F);
            z >>= 7;
            if (z) {
                out[pos++] = (uint8_t)(byte | 0x80);
            } else {
                out[pos++] = byte;
                break;
            }
        }
        memcpy(out + pos, &counts[i], 8);
        pos += 8;
    }
    return pos;
}

/* Decode n pairs starting at payload[pos]; fills deltas/counts and returns
 * the next offset, or a negative status on any anomaly (truncation,
 * over-long varint, value outside uint64/int64) - the Python wrapper then
 * falls back to the pure loop, which reproduces the exact historical
 * exception (DeserializationError or OverflowError). */
int64_t repro_decode_pairs(const uint8_t *payload, int64_t len, int64_t pos,
                           int64_t n, int64_t *deltas, double *counts)
{
    for (int64_t i = 0; i < n; i++) {
        uint64_t result = 0;
        int shift = 0;
        for (;;) {
            if (pos >= len)
                return -1; /* truncated varint */
            uint8_t byte = payload[pos++];
            uint64_t low = byte & 0x7F;
            if (shift < 64) {
                if (shift > 57 && (low >> (64 - shift)) != 0)
                    return -2; /* exceeds uint64 */
                result |= low << shift;
            } else if (low != 0) {
                return -2; /* exceeds uint64 */
            }
            if (!(byte & 0x80))
                break;
            shift += 7;
            if (shift > 70)
                return -3; /* varint too long */
        }
        deltas[i] = (int64_t)(result >> 1) ^ -((int64_t)(result & 1));
        if (pos + 8 > len)
            return -1; /* truncated float */
        memcpy(&counts[i], payload + pos, 8);
        pos += 8;
    }
    return pos;
}
