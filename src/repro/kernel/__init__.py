"""The columnar ingest kernel: one engine behind every ingest path.

``repro.kernel`` is the single place where values become *(keys, counts)*
segments.  The scalar :meth:`~repro.core.BaseDDSketch.add`, the vectorized
:meth:`~repro.core.BaseDDSketch.add_batch`, the grouped high-cardinality
pipeline (:func:`repro.store.grouped.add_grouped_batch`), the registry flush
paths, and the frame-v3 bucket codec all call into this module instead of
carrying their own key-computation or binning loops.

Two interchangeable backends implement the inner loops:

* ``numpy`` — the pure-NumPy reference (:mod:`repro.kernel.reference`),
  always available, and definitionally correct;
* ``native`` — a small C library compiled on demand from
  ``src/repro/kernel/_kernel.c`` and loaded via ctypes
  (:mod:`repro.kernel.native`).  A *soft* dependency: it requires only a C
  compiler on the host, and silently gives way to NumPy when one is missing.

Selection: :func:`set_backend` programmatically, or the ``REPRO_KERNEL``
environment variable (``auto`` — the default — prefers native when it can be
built and self-tested; ``numpy`` forces the reference; ``native`` requires
the compiled backend, warning and falling back if unavailable).  Both
backends are bit-exact down to serialized frame bytes — enforced by a native
load-time self-test and by ``tests/test_kernel_backends.py``.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.exceptions import IllegalArgumentError
from repro.kernel.segments import (
    NEGATIVE,
    POSITIVE,
    ZERO,
    Selection,
    SignSplit,
    apply_segments,
    classify_value,
    coerce_values_weights,
    selection_from_keys,
)

__all__ = [
    "POSITIVE",
    "NEGATIVE",
    "ZERO",
    "Selection",
    "SignSplit",
    "active_backend",
    "apply_segments",
    "backend_info",
    "bin_grouped",
    "bin_selection",
    "classify_value",
    "coerce_values_weights",
    "compute_keys",
    "decode_bucket_pairs",
    "encode_bucket_pairs",
    "encode_proto_bins",
    "native_available",
    "selection_from_keys",
    "set_backend",
]

#: Environment variable selecting the kernel backend (``auto``/``numpy``/``native``).
BACKEND_ENV = "REPRO_KERNEL"

_VALID_CHOICES = ("auto", "numpy", "native")

_active = None  # resolved lazily on first kernel call


def _numpy_backend():
    from repro.kernel.reference import NumpyBackend

    return NumpyBackend()


def _resolve_backend(choice: str, *, strict: bool):
    """Instantiate the backend for ``choice``.

    ``strict`` controls what happens when ``native`` is requested but
    unavailable: raise (programmatic :func:`set_backend`) versus warn and
    fall back (environment-variable selection, which must never break a
    deployment that merely lost its compiler).
    """
    if choice == "numpy":
        return _numpy_backend()
    from repro.kernel.native import NativeKernelUnavailable, load_native_backend

    if choice == "native":
        try:
            return load_native_backend()
        except NativeKernelUnavailable as error:
            if strict:
                raise IllegalArgumentError(
                    f"native kernel backend unavailable: {error}"
                ) from error
            warnings.warn(
                f"REPRO_KERNEL=native requested but unavailable ({error}); "
                "falling back to the numpy backend",
                RuntimeWarning,
                stacklevel=3,
            )
            return _numpy_backend()
    # auto: prefer native, quietly use numpy otherwise.
    try:
        return load_native_backend()
    except NativeKernelUnavailable:
        return _numpy_backend()


def _backend():
    """The active backend object, resolving ``REPRO_KERNEL`` on first use."""
    global _active
    if _active is None:
        choice = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
        if choice not in _VALID_CHOICES:
            warnings.warn(
                f"unknown {BACKEND_ENV}={choice!r} (expected one of "
                f"{', '.join(_VALID_CHOICES)}); using auto",
                RuntimeWarning,
                stacklevel=3,
            )
            choice = "auto"
        _active = _resolve_backend(choice, strict=False)
    return _active


def set_backend(name: str) -> str:
    """Select the kernel backend programmatically.

    ``name`` is ``"numpy"``, ``"native"``, or ``"auto"``.  Requesting
    ``"native"`` when it cannot be compiled/loaded raises
    :class:`~repro.exceptions.IllegalArgumentError` (unlike the environment
    variable, which warns and falls back).  Returns the name of the backend
    now active.  Existing sketches are unaffected retroactively; the backend
    only changes how *future* kernel calls execute — results are bit-exact
    either way.
    """
    global _active
    choice = str(name).strip().lower()
    if choice not in _VALID_CHOICES:
        raise IllegalArgumentError(
            f"unknown kernel backend {name!r}; expected one of {', '.join(_VALID_CHOICES)}"
        )
    _active = _resolve_backend(choice, strict=True)
    return _active.name


def active_backend() -> str:
    """Name of the backend currently serving kernel calls (``numpy``/``native``)."""
    return _backend().name


def native_available() -> bool:
    """Whether the compiled backend can be built, loaded, and self-tested here."""
    from repro.kernel.native import availability

    return availability()[0]


def backend_info() -> dict:
    """Diagnostics for ``--version`` output and BENCH artifacts.

    Returns a dict with the ``active`` backend name, whether ``native`` is
    available, the unavailability ``reason`` (or ``None``), and the raw
    ``REPRO_KERNEL`` environment setting.
    """
    from repro.kernel.native import availability

    available, reason = availability()
    return {
        "active": active_backend(),
        "native_available": available,
        "native_unavailable_reason": reason,
        "env": os.environ.get(BACKEND_ENV),
    }


def compute_keys(mapping, values) -> SignSplit:
    """Sign-split a float64 value batch and compute its bucket keys.

    The single kernel behind every batch ingest path: values strictly above
    ``mapping.min_possible`` map through ``mapping``'s key function, values
    strictly below its negation map by magnitude, and the remainder land in
    the zero bucket.  Returns a :class:`SignSplit` exposing per-sign masks,
    compressed keys, key ranges, and :meth:`~SignSplit.selection` packaging.
    """
    return _backend().split_keys(mapping, values)


def bin_selection(selection: Selection, lo: int, hi: int):
    """Bin a :class:`Selection` into the key window ``[lo, hi]``.

    Returns a dense count array of ``hi - lo + 1`` cells; out-of-window keys
    accumulate onto the boundary cells, matching bounded-store folding.
    """
    return _backend().bin_selection(selection, lo, hi)


def bin_grouped(group_indices, keys, weights, num_groups, offset, span, scratch=None):
    """Bin a grouped batch into a ``num_groups x span`` cell grid.

    Cell ``(g, k - offset)`` accumulates the weight of every sample with
    group ``g`` and key ``k``; the caller guarantees all keys fall in
    ``[offset, offset + span)``.  ``scratch`` optionally recycles the
    reference backend's flat-index temporary for single-writer callers.
    """
    return _backend().bin_grouped(
        group_indices, keys, weights, num_groups, offset, span, scratch=scratch
    )


def encode_bucket_pairs(deltas, counts) -> bytes:
    """Encode frame-v3 ``(zig-zag key delta, float64 count)`` bucket pairs."""
    return _backend().encode_bucket_pairs(deltas, counts)


def decode_bucket_pairs(reader, num_buckets: int):
    """Decode ``num_buckets`` frame-v3 bucket pairs from a varint reader.

    Returns ``(deltas, counts)`` arrays and advances ``reader`` past the
    consumed bytes; malformed input raises the codec's historical exceptions.
    """
    return _backend().decode_bucket_pairs(reader, num_buckets)


def encode_proto_bins(keys, counts) -> bytes:
    """Encode sparse bins as DataDog-proto ``binCounts`` map entries.

    The interop codec's (:mod:`repro.serialization.interop`) bucket loop:
    each ``(key, count)`` becomes one length-delimited map-entry submessage
    (``sint32`` zig-zag key + ``double`` count).  The zig-zag/float pair
    bytes inside every entry come from :func:`encode_bucket_pairs`, so the
    proto bytes are identical under both kernel backends wherever the
    frame-v3 bucket bytes are.
    """
    return _backend().encode_proto_bins(keys, counts)
