"""Segments: the universal currency of the columnar ingest kernel.

Every ingest path in the repository — scalar :meth:`~repro.core.BaseDDSketch.add`,
:meth:`~repro.core.BaseDDSketch.add_batch`, and the grouped high-cardinality
pipeline — now speaks the same language: a batch of values is split by sign,
mapped to integer bucket keys, binned into contiguous ``(keys, counts)``
*segments*, and fanned out into stores.  This module holds the shared,
backend-independent half of that pipeline:

* :func:`coerce_values_weights` — the single audited entry point for the
  zero/negative/NaN filtering that ``add_batch`` and ``add_grouped_batch``
  previously each reimplemented,
* :func:`classify_value` — the scalar sign split used by ``add``/``delete``,
* :class:`SignSplit` / :class:`Selection` — the lazy result objects produced
  by a backend's key-computation pass, and
* :func:`apply_segments` — the fan-out of pre-binned rows into stores via
  their ``_add_binned_segment`` hook.

Everything numerically order-sensitive (pairwise ``numpy.sum`` weight totals,
min/max reductions) lives *here*, in shared NumPy code operating on identical
arrays regardless of backend — which is what guarantees that the NumPy and
native backends produce bit-identical sketches down to the serialized bytes.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import IllegalArgumentError

#: Sign labels used throughout the kernel layer: a value strictly above the
#: mapping's ``min_possible`` is POSITIVE, strictly below ``-min_possible`` is
#: NEGATIVE (stored by magnitude), and everything in between is ZERO.
POSITIVE = 1
NEGATIVE = -1
ZERO = 0


def coerce_values_weights(
    values: "np.ndarray",
    weights: Optional[Union[float, "np.ndarray"]],
) -> Tuple["np.ndarray", Optional["np.ndarray"]]:
    """Normalize and validate one ingestion batch (the audited entry point).

    Returns flat finite ``float64`` values plus either ``None`` (unit
    weights) or a matching array of positive finite weights (a scalar weight
    is broadcast).  Every batch entry point — ``add_batch``,
    ``add_grouped_batch``, and the registry flush paths that delegate to
    them — funnels through this one function, so the edge-case semantics
    (empty batch, all-zero values, mixed signs, non-finite rejection) are
    defined exactly once and pinned by ``tests/test_kernel_segments.py``.

    Raises
    ------
    IllegalArgumentError
        If any value is non-finite, any weight is non-finite or not strictly
        positive, or the weight shape does not match the value shape.
        Validation happens before any sketch mutation, so a rejected batch
        leaves its target unchanged.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if not np.isfinite(values).all():
        bad = values[~np.isfinite(values)][0]
        raise IllegalArgumentError(f"value must be a finite number, got {bad!r}")
    if weights is None:
        return values, None
    weight_array = np.asarray(weights, dtype=np.float64)
    if weight_array.ndim == 0:
        weight_array = np.full(values.shape, float(weight_array))
    else:
        weight_array = weight_array.reshape(-1)
    if weight_array.shape != values.shape:
        raise IllegalArgumentError(
            f"weights shape {weight_array.shape} does not match "
            f"values shape {values.shape}"
        )
    if not np.isfinite(weight_array).all() or not (weight_array > 0.0).all():
        bad = weight_array[~(np.isfinite(weight_array) & (weight_array > 0.0))][0]
        raise IllegalArgumentError(
            f"weight must be a positive finite number, got {bad!r}"
        )
    return values, weight_array


def classify_value(mapping, value: float) -> Tuple[int, int]:
    """Scalar sign split: return ``(sign, key)`` for one value.

    ``sign`` is :data:`POSITIVE`, :data:`NEGATIVE` or :data:`ZERO`; ``key``
    is the bucket key of the value's magnitude (0 for the zero bucket).
    This is the scalar adapter over the kernel's sign-split semantics, used
    by :meth:`~repro.core.BaseDDSketch.add` and ``delete`` so that the
    scalar and batch paths share one classification rule.
    """
    min_possible = mapping.min_possible
    if value > min_possible:
        return POSITIVE, mapping.key(value)
    if value < -min_possible:
        return NEGATIVE, mapping.key(-value)
    return ZERO, 0


class Selection:
    """One sign's slice of a batch, ready to be binned into a store.

    Produced by :meth:`SignSplit.selection`.  Carries everything a store
    adapter needs to place its window and accumulate the batch:

    * ``count`` — number of selected samples,
    * ``min_key`` / ``max_key`` — key range of the selection,
    * ``total`` — total selected weight, computed in shared NumPy code
      (``float(count)`` for unit weights, a pairwise ``numpy.sum`` of the
      compressed weights otherwise) so it is identical across backends,
    * ``weights`` — compressed per-sample weights, or ``None`` for unit
      weights,
    * ``keys`` — compressed ``int64`` bucket keys (materialized lazily; the
      native backend can bin directly from its flagged full-batch arrays
      without ever compressing).
    """

    __slots__ = ("count", "min_key", "max_key", "total", "weights", "_keys", "_split", "_sign")

    def __init__(
        self,
        count: int,
        min_key: int,
        max_key: int,
        total: float,
        weights: Optional["np.ndarray"],
        keys: Optional["np.ndarray"] = None,
        split: Optional["SignSplit"] = None,
        sign: int = ZERO,
    ) -> None:
        self.count = int(count)
        self.min_key = int(min_key)
        self.max_key = int(max_key)
        self.total = float(total)
        self.weights = weights
        self._keys = keys
        self._split = split
        self._sign = sign

    @property
    def keys(self) -> "np.ndarray":
        """The selection's compressed ``int64`` bucket keys (lazy)."""
        if self._keys is None:
            assert self._split is not None
            self._keys = self._split.keys_for(self._sign)
        return self._keys

    @property
    def split(self) -> Optional["SignSplit"]:
        """The originating :class:`SignSplit` (``None`` for raw-key selections)."""
        return self._split

    @property
    def sign(self) -> int:
        """Which sign of the split this selection covers."""
        return self._sign


def selection_from_keys(
    keys: "np.ndarray", weights: Optional["np.ndarray"]
) -> Selection:
    """Wrap an already-keyed batch (e.g. a decoded store payload) as a selection.

    Used by :meth:`~repro.store.DenseStore.add_batch` so that direct
    key-level bulk insertion rides the same binning kernel as the
    value-level ingest paths.  ``keys`` must be a non-empty flat ``int64``
    array; ``weights`` either ``None`` or strictly positive finite floats of
    the same length (the store adapter validates this upstream).
    """
    total = float(weights.sum()) if weights is not None else float(keys.size)
    return Selection(
        count=keys.size,
        min_key=int(keys.min()),
        max_key=int(keys.max()),
        total=total,
        weights=weights,
        keys=keys,
    )


class SignSplit:
    """Result of a backend's sign-split + key-computation pass over a batch.

    Concrete subclasses are produced by the active backend
    (:func:`repro.kernel.compute_keys`); they differ in *how* the split is
    represented (eager NumPy masks vs. a flagged full-batch key array from
    the native pass) but expose one protocol:

    * :attr:`num_positive` / :attr:`num_negative` — selected sample counts,
    * :meth:`mask_for` — full-length boolean mask per sign,
    * :meth:`keys_for` — compressed ``int64`` keys per sign (magnitude keys
      for the negative sign),
    * :meth:`key_range` — ``(min_key, max_key)`` per sign,
    * :meth:`selection` — package one sign (plus optional weights) for a
      store adapter.
    """

    __slots__ = ("values", "size", "num_positive", "num_negative")

    def __init__(self, values: "np.ndarray", num_positive: int, num_negative: int) -> None:
        self.values = values
        self.size = int(values.size)
        self.num_positive = int(num_positive)
        self.num_negative = int(num_negative)

    @property
    def num_zero(self) -> int:
        """Number of samples routed to the zero bucket."""
        return self.size - self.num_positive - self.num_negative

    def mask_for(self, sign: int) -> "np.ndarray":
        """Full-length boolean mask of the samples with the given sign."""
        raise NotImplementedError

    def keys_for(self, sign: int) -> "np.ndarray":
        """Compressed ``int64`` bucket keys of the samples with the given sign."""
        raise NotImplementedError

    def key_range(self, sign: int) -> Tuple[int, int]:
        """``(min_key, max_key)`` over the samples with the given sign."""
        raise NotImplementedError

    @property
    def positive_mask(self) -> "np.ndarray":
        """Mask of the strictly-positive (indexable) samples."""
        return self.mask_for(POSITIVE)

    @property
    def negative_mask(self) -> "np.ndarray":
        """Mask of the strictly-negative (indexable) samples."""
        return self.mask_for(NEGATIVE)

    @property
    def zero_mask(self) -> "np.ndarray":
        """Mask of the samples routed to the zero bucket."""
        return ~(self.mask_for(POSITIVE) | self.mask_for(NEGATIVE))

    def selection(
        self, sign: int, weight_array: Optional["np.ndarray"] = None
    ) -> Selection:
        """Package one sign of the split (plus optional weights) for a store.

        The weight compression and the pairwise total live here, in shared
        code, so every backend hands the store bit-identical totals.
        """
        count = self.num_positive if sign == POSITIVE else self.num_negative
        if weight_array is None:
            weights = None
            total = float(count)
        else:
            weights = weight_array[self.mask_for(sign)]
            total = float(weights.sum())
        min_key, max_key = self.key_range(sign)
        return Selection(
            count=count,
            min_key=min_key,
            max_key=max_key,
            total=total,
            weights=weights,
            split=self,
            sign=sign,
        )


def apply_segments(
    stores: Sequence, offset: int, cells, totals: "np.ndarray"
) -> None:
    """Fan pre-binned rows out into stores via ``_add_binned_segment``.

    ``cells`` is the grouped binning result (``num_groups x span``, row
    ``g`` holding the per-key counts for ``stores[g]`` starting at key
    ``offset``); ``totals`` the per-group input-order weight totals from
    :func:`repro.store.grouped.group_totals`.  Each non-empty row is trimmed
    to its non-zero extent and handed to the store's
    ``_add_binned_segment`` hook, which performs the window placement and
    boundary folding exactly as its ``add_batch`` would.
    """
    for group in np.flatnonzero(totals > 0.0).tolist():
        row = cells[group]
        nonzero = np.flatnonzero(row)
        first, last = int(nonzero[0]), int(nonzero[-1])
        stores[group]._add_binned_segment(
            offset + first, row[first : last + 1], float(totals[group])
        )
