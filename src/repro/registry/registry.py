"""The sketch registry: many tagged series behind one ingestion front-end.

:class:`SketchRegistry` owns one sketch per :class:`~repro.registry.SeriesKey`
and feeds them in bulk: columnar batches labelled with series keys flow
through the grouped ingestion pipeline (one
:meth:`~repro.mapping.KeyMapping.key_batch` call and one combined
``bincount`` for the whole batch when the sketch family allows it — see
:meth:`repro.core.BaseDDSketch.add_grouped_batch`), and reads answer the
three query shapes of a high-cardinality monitoring backend:

* **exact series** — the sketch of one ``(metric, tags)`` combination;
* **tag-filtered merge** — every series of a metric carrying the filter
  tags, merged (full mergeability, Section 2.1 of the paper, keeps the
  accuracy guarantee intact);
* **metric rollup** — all series of a metric, merged.

A registry serializes to the length-prefixed multi-sketch wire frame
(:mod:`repro.serialization.frame`), which is how an agent flushes thousands
of series in one payload.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ddsketch import BaseDDSketch, DDSketch
from repro.core.grouped import GroupedIngest
from repro.exceptions import EmptySketchError, IllegalArgumentError
from repro.registry.series import SeriesKey, SeriesLike, TagsLike


class SketchRegistry:
    """A collection of sketches keyed by tagged series, fed in bulk.

    Parameters
    ----------
    sketch_factory:
        Zero-argument callable creating the sketch for a series the first
        time it receives data; defaults to the paper's configuration
        (``DDSketch(relative_accuracy=0.01)``).

    Examples
    --------
    >>> import numpy as np
    >>> registry = SketchRegistry()
    >>> keys = [SeriesKey("latency", (("endpoint", "/home"),)),
    ...         SeriesKey("latency", (("endpoint", "/api"),))]
    >>> registry.ingest_grouped(keys, np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]))
    3
    >>> registry.total_count()
    3.0
    >>> registry.quantile("latency", 0.5, tag_filter={"endpoint": "/home"}) > 0
    True
    """

    def __init__(self, sketch_factory: Optional[Callable[[], BaseDDSketch]] = None) -> None:
        self._sketch_factory = sketch_factory or (lambda: DDSketch(relative_accuracy=0.01))
        self._ingest = GroupedIngest(self._sketch_factory)
        self._data_version = 0

    # ------------------------------------------------------------------ #
    # Series access
    # ------------------------------------------------------------------ #

    @property
    def data_version(self) -> int:
        """Monotone counter bumped on every mutating call.

        Read-side caches (e.g. :class:`~repro.query.QueryEngine` over a live
        registry) compare this against the version they derived from to
        detect staleness without tracking individual series.  Handing out a
        mutable sketch via :meth:`sketch` conservatively counts as a
        mutation; values added through a previously-obtained live reference
        are the one write path the counter cannot see.
        """
        return self._data_version

    def sketch(self, series: SeriesLike, tags: TagsLike = None) -> BaseDDSketch:
        """The sketch for a series, created on first use."""
        self._data_version += 1
        return self._ingest.sketch(SeriesKey.of(series, tags))

    def get(self, series: SeriesLike, tags: TagsLike = None) -> BaseDDSketch:
        """The sketch for a series; raises :class:`EmptySketchError` if unknown."""
        key = SeriesKey.of(series, tags)
        try:
            return self._ingest.get(key)
        except EmptySketchError:
            raise EmptySketchError(f"no data for series {key}") from None

    def series_keys(self, metric: Optional[str] = None, tag_filter: TagsLike = None) -> List[SeriesKey]:
        """Sorted keys of the stored series, optionally filtered."""
        return sorted(
            key for key in self._ingest.series_ids()
            if key.matches(metric, tag_filter)
        )

    def metrics(self) -> List[str]:
        """Sorted names of the metrics with at least one series."""
        return sorted({key.metric for key in self._ingest.series_ids()})

    @property
    def num_series(self) -> int:
        """Number of stored series."""
        return len(self._ingest)

    def __len__(self) -> int:
        return len(self._ingest)

    def __contains__(self, series: SeriesLike) -> bool:
        return SeriesKey.of(series) in self._ingest

    def __iter__(self) -> Iterator[Tuple[SeriesKey, BaseDDSketch]]:
        """Iterate ``(key, sketch)`` pairs in sorted key order."""
        for key in self.series_keys():
            yield key, self._ingest.get(key)

    def total_count(self, metric: Optional[str] = None, tag_filter: TagsLike = None) -> float:
        """Total inserted weight over the matching series (0.0 when none match)."""
        return sum(
            self._ingest.get(key).count
            for key in self.series_keys(metric, tag_filter)
        )

    def size_in_bytes(self) -> int:
        """Modelled memory footprint of every stored sketch."""
        return sum(sketch.size_in_bytes() for _, sketch in self._ingest)

    def clear(self) -> None:
        """Drop every series."""
        self._data_version += 1
        self._ingest.clear()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def add(
        self,
        series: SeriesLike,
        value: float,
        weight: float = 1.0,
        tags: TagsLike = None,
    ) -> None:
        """Record one value for one series."""
        self.sketch(series, tags).add(value, weight)

    def add_batch(
        self,
        series: SeriesLike,
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
        tags: TagsLike = None,
    ) -> None:
        """Record a whole array for one series (vectorized)."""
        self.sketch(series, tags).add_batch(values, weights)

    def ingest_grouped(
        self,
        series: Sequence[SeriesLike],
        group_indices: "np.ndarray",
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> int:
        """Ingest pre-factorized columns across many series at once.

        ``series`` lists one key per group and ``group_indices`` maps each
        sample to a position in that list; the batch flows through the
        grouped pipeline (one ``key_batch``, one combined ``bincount`` where
        possible).  Returns the number of samples ingested.
        """
        keys = [SeriesKey.of(entry) for entry in series]
        self._data_version += 1
        return self._ingest.ingest_grouped(keys, group_indices, values, weights)

    def ingest_columns(
        self,
        series: Sequence[SeriesLike],
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> int:
        """Ingest raw parallel ``(series, value)`` columns (factorized here).

        ``series`` may be an array of metric strings (the common columnar
        shape) or any sequence of loose series descriptions; each unique
        entry is normalized to a :class:`SeriesKey` once.
        """
        array = np.asarray(series)
        if array.ndim == 1 and array.dtype.kind == "U":
            # Vectorized factorization for the all-strings column, then one
            # SeriesKey normalization per *unique* metric.  (Bytes columns
            # fall through to the loose path, which rejects non-string
            # metrics instead of repr-mangling them.)
            uniques, codes = np.unique(array, return_inverse=True)
            keys = [SeriesKey.of(str(unique)) for unique in uniques.tolist()]
            self._data_version += 1
            return self._ingest.ingest_grouped(keys, codes.astype(np.int64), values, weights)
        # Loose descriptions: normalize to hashable keys, then let the
        # facade's own factorization do the dict scan.
        keys = [SeriesKey.of(entry) for entry in series]
        self._data_version += 1
        return self._ingest.ingest_columns(keys, values, weights)

    def merge_series(
        self,
        series: SeriesLike,
        sketch: BaseDDSketch,
        tags: TagsLike = None,
        copy: bool = True,
    ) -> None:
        """Fold one sketch into one series (created on first use).

        With ``copy=False`` a *new* series adopts ``sketch`` itself instead
        of a copy — the ownership-transfer shape used when routing decoded
        wire-frame entries (:meth:`merge_frame`) or shard snapshots, where
        the caller holds the only reference.  Merging into an existing
        series behaves identically either way (Algorithm 4 mergeability).
        """
        self._data_version += 1
        self._ingest.merge_sketch(SeriesKey.of(series, tags), sketch, copy=copy)

    def merge(self, other: "SketchRegistry") -> None:
        """Fold every series of ``other`` into this registry (per-series merge)."""
        for key, sketch in other:
            self.merge_series(key, sketch)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def rollup(self, metric: str, tag_filter: TagsLike = None) -> BaseDDSketch:
        """Merge every matching series into a new sketch.

        With no filter this is the metric-level rollup; with a filter it is
        the tag-filtered merge.  The stored per-series sketches are not
        modified.  Raises :class:`EmptySketchError` when nothing matches.
        """
        selected = self.series_keys(metric, tag_filter)
        if not selected:
            raise EmptySketchError(
                f"no data for metric {metric!r}"
                + (f" with tags {dict(self._normalized_filter(tag_filter))}" if tag_filter else "")
            )
        merged = self._ingest.get(selected[0]).copy()
        for key in selected[1:]:
            merged.merge(self._ingest.get(key))
        return merged

    @staticmethod
    def _normalized_filter(tag_filter: TagsLike) -> Tuple[Tuple[str, str], ...]:
        from repro.registry.series import normalize_tags

        return normalize_tags(tag_filter)

    def quantile(
        self,
        metric: str,
        quantile: float,
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
    ) -> float:
        """One quantile of a metric: exact series, tag-filtered, or rollup.

        ``tags`` selects one exact series; ``tag_filter`` merges every series
        carrying those tags; neither merges the whole metric.  Raises
        :class:`IllegalArgumentError` for an out-of-range quantile and
        :class:`EmptySketchError` when no matching data exists.
        """
        return self.quantiles(metric, (quantile,), tags=tags, tag_filter=tag_filter)[0]

    def quantiles(
        self,
        metric: str,
        quantiles: Sequence[float],
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
    ) -> List[float]:
        """Several quantiles from one merged read (single cumulative pass)."""
        for quantile in quantiles:
            if not 0 <= quantile <= 1:  # rejects NaN as well
                raise IllegalArgumentError(f"quantile must be in [0, 1], got {quantile!r}")
        if tags is not None and tag_filter is not None:
            raise IllegalArgumentError("pass either tags (exact series) or tag_filter, not both")
        if tags is not None:
            sketch: BaseDDSketch = self.get(metric, tags)
        else:
            sketch = self.rollup(metric, tag_filter)
        values = sketch.get_quantiles(quantiles)
        if any(value is None for value in values):
            raise EmptySketchError(f"no data for metric {metric!r}")
        return [float(value) for value in values]

    def query_engine(
        self,
        cube_dimensions: Sequence[Sequence[str]] = (),
        cache_capacity: int = 128,
    ) -> "QueryEngine":
        """A :class:`~repro.query.QueryEngine` over this registry.

        Cube cells are premerged from the current contents; the engine
        watches :attr:`data_version` and rebuilds them whenever this
        registry mutates, so it is cheapest over an immutable snapshot.
        """
        from repro.query import QueryEngine

        return QueryEngine.over_registry(
            self, cube_dimensions=cube_dimensions, cache_capacity=cache_capacity
        )

    # ------------------------------------------------------------------ #
    # Wire frames
    # ------------------------------------------------------------------ #

    def to_frame(self) -> bytes:
        """Serialize every series into one multi-sketch wire frame (v3)."""
        from repro.serialization.frame import encode_frame

        return encode_frame(self)

    def flush_frame(self) -> bytes:
        """Serialize every series into one frame, then drop the local state.

        This is the agent-side flush of the paper's monitoring loop
        (Section 1), generalized to high cardinality: thousands of series
        leave in a single length-prefixed payload.
        """
        frame = self.to_frame()
        self.clear()
        return frame

    def merge_frame(self, payload: bytes) -> int:
        """Decode a frame and merge every carried series into this registry.

        Returns the number of series merged.  Raises
        :class:`~repro.exceptions.DeserializationError` for malformed
        payloads (the stored state is only modified for well-formed frames).
        """
        from repro.serialization.frame import decode_frame

        entries = decode_frame(payload)
        for key, sketch in entries:
            # The decoded sketch is owned by nobody else; adopt it directly.
            self.merge_series(key, sketch, copy=False)
        return len(entries)

    @classmethod
    def from_frame(
        cls,
        payload: bytes,
        sketch_factory: Optional[Callable[[], BaseDDSketch]] = None,
    ) -> "SketchRegistry":
        """Rebuild a registry from one wire frame."""
        registry = cls(sketch_factory=sketch_factory)
        registry.merge_frame(payload)
        return registry

    def __repr__(self) -> str:
        return (
            f"SketchRegistry(num_series={self.num_series}, "
            f"metrics={self.metrics()})"
        )
