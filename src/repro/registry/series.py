"""Tagged series identity: ``(metric, tags)`` keys for the sketch registry.

In the paper's monitoring scenario (Section 1) a "metric" is really a family
of thousands of concrete series — one per host/endpoint/status combination.
:class:`SeriesKey` is the canonical identity of one such series: a metric
name plus a normalized (sorted, duplicate-free) tuple of ``(key, value)``
string tags.  Keys are hashable, totally ordered (for deterministic flush
and iteration order), and support the subset matching used by tag-filtered
queries (``host="web-1"`` selects every series carrying that tag, whatever
its other tags are).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Tuple, Union

from repro.exceptions import IllegalArgumentError

#: Anything accepted where tags are expected: a mapping, an iterable of
#: ``(key, value)`` pairs, or ``None`` for an untagged series.
TagsLike = Union[None, Mapping[str, str], Iterable[Tuple[str, str]]]

#: Anything accepted where a series is expected: a ready-made key, a bare
#: metric name, or a ``(metric, tags)`` pair.
SeriesLike = Union["SeriesKey", str, Tuple[str, TagsLike]]


def normalize_tags(tags: TagsLike) -> Tuple[Tuple[str, str], ...]:
    """Normalize tags to a sorted, validated tuple of string pairs."""
    if tags is None:
        return ()
    if isinstance(tags, Mapping):
        items = tags.items()
    else:
        items = list(tags)
    normalized = []
    seen = set()
    for item in items:
        try:
            key, value = item
        except (TypeError, ValueError) as error:
            raise IllegalArgumentError(
                f"tags must be (key, value) pairs, got {item!r}"
            ) from error
        if not isinstance(key, str) or not isinstance(value, str):
            raise IllegalArgumentError(
                f"tag keys and values must be strings, got {(key, value)!r}"
            )
        if not key:
            raise IllegalArgumentError("tag keys must be non-empty strings")
        if key in seen:
            raise IllegalArgumentError(f"duplicate tag key {key!r}")
        seen.add(key)
        normalized.append((key, value))
    return tuple(sorted(normalized))


@dataclass(frozen=True, order=True)
class SeriesKey:
    """Identity of one tagged series: a metric name plus normalized tags.

    Instances are immutable, hashable, and ordered by ``(metric, tags)`` so
    registries and frames enumerate series deterministically.  Use
    :meth:`of` to build keys from loose inputs (bare metric strings,
    ``(metric, tags)`` pairs, tag mappings).
    """

    metric: str
    tags: Tuple[Tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.metric, str) or not self.metric:
            raise IllegalArgumentError(
                f"metric must be a non-empty string, got {self.metric!r}"
            )
        object.__setattr__(self, "tags", normalize_tags(self.tags))

    @classmethod
    def of(cls, series: SeriesLike, tags: TagsLike = None) -> "SeriesKey":
        """Coerce a loose series description into a :class:`SeriesKey`.

        Accepts an existing key (returned as-is when no extra ``tags`` are
        supplied), a bare metric string, or a ``(metric, tags)`` pair; an
        explicit ``tags`` argument combines with a bare metric string.
        """
        if isinstance(series, SeriesKey):
            if tags is not None:
                raise IllegalArgumentError(
                    "cannot combine an existing SeriesKey with extra tags"
                )
            return series
        if isinstance(series, str):
            return cls(series, normalize_tags(tags))
        if isinstance(series, tuple) and len(series) == 2:
            if tags is not None:
                raise IllegalArgumentError(
                    "cannot combine a (metric, tags) pair with extra tags"
                )
            metric, pair_tags = series
            return cls(metric, normalize_tags(pair_tags))
        raise IllegalArgumentError(
            f"expected a SeriesKey, metric string, or (metric, tags) pair, got {series!r}"
        )

    @property
    def tag_dict(self) -> Mapping[str, str]:
        """The tags as a plain dictionary (copy)."""
        return dict(self.tags)

    def matches(self, metric: Optional[str] = None, tag_filter: TagsLike = None) -> bool:
        """Whether this series belongs to ``metric`` and carries every filter tag.

        ``tag_filter`` selects by subset: a series matches when each filter
        pair appears among its tags (extra tags are ignored).  A ``None``
        metric matches any metric; an empty filter matches any tags.
        """
        if metric is not None and self.metric != metric:
            return False
        wanted = normalize_tags(tag_filter)
        if not wanted:
            return True
        own = dict(self.tags)
        return all(own.get(key) == value for key, value in wanted)

    def __str__(self) -> str:
        if not self.tags:
            return self.metric
        rendered = ",".join(f"{key}={value}" for key, value in self.tags)
        return f"{self.metric}{{{rendered}}}"
