"""Bounded spill-to-batch ingest queue: the write side of the sharded tier.

The sharded concurrency tier (:mod:`repro.registry.sharded`) is built on the
observation that full mergeability (paper Section 2.1/2.3) makes a
partitioned write path *correct by construction*: as long as each series'
samples all land in one place, any read can merge on demand with zero
accuracy loss.  What remains is making the write path cheap, and that is
this module's job: ``record`` calls do **not** touch a sketch — they append
to a columnar pending buffer, and a later *flush* drains the whole buffer
through one grouped ``bincount`` ingestion pass
(:meth:`repro.core.BaseDDSketch.add_grouped_batch`), which is where the
30x+ batch-vs-loop speedup of the grouped pipeline is earned.

:class:`ShardBuffer` is one such buffer.  It is bounded: once the pending
sample count reaches ``capacity`` the owning registry *spills* — drains the
buffer into its shard synchronously — so memory stays proportional to the
configured bound rather than to the record rate.  Appends of all three
shapes (scalar, one-series batch, grouped columns) are accepted and unified
into one ``(series, group_code, value, weight)`` columnar layout at drain
time, reusing grown concatenation scratch arrays across drains.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import IllegalArgumentError
from repro.registry.series import SeriesKey


@dataclass
class DrainBatch:
    """One drained buffer generation, shaped for ``SketchRegistry.ingest_grouped``.

    The arrays may alias the buffer's reusable concatenation scratch, so a
    batch must be fully ingested before the next :meth:`ShardBuffer.take`
    on the same buffer — the sharded registry guarantees this by draining
    each shard under that shard's single-writer lock.
    """

    series: List[SeriesKey]
    group_indices: "np.ndarray"
    values: "np.ndarray"
    weights: Optional["np.ndarray"]
    count: int


class ShardBuffer:
    """Columnar pending buffer for one shard of a sharded registry.

    Appends are thread-safe (one internal lock, held only for list/array
    bookkeeping — never while sketching), so any number of producer threads
    may record into the same shard; the expensive work happens at drain
    time, on whichever thread calls :meth:`take`.

    Parameters
    ----------
    capacity:
        Pending-sample bound.  The buffer itself never refuses an append —
        enforcing the bound (by spilling to the shard) is the owning
        registry's job, driven by the pending count every append returns.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise IllegalArgumentError(f"capacity must be positive, got {capacity!r}")
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._positions: Dict[SeriesKey, int] = {}
        self._series: List[SeriesKey] = []
        self._chunks: List[Tuple["np.ndarray", "np.ndarray", Optional["np.ndarray"]]] = []
        self._scalar_codes: List[int] = []
        self._scalar_values: List[float] = []
        self._scalar_weights: List[float] = []
        self._weighted = False
        self._pending = 0
        # Reusable drain-time concatenation scratch (grown geometrically).
        self._concat_codes: Optional["np.ndarray"] = None
        self._concat_values: Optional["np.ndarray"] = None
        self._concat_weights: Optional["np.ndarray"] = None

    @property
    def capacity(self) -> int:
        """The configured pending-sample bound."""
        return self._capacity

    @property
    def pending(self) -> int:
        """Number of samples currently buffered (unflushed)."""
        return self._pending

    def __len__(self) -> int:
        return self._pending

    def _code_locked(self, key: SeriesKey) -> int:
        """The buffer-local group code for ``key`` (lock must be held)."""
        code = self._positions.get(key)
        if code is None:
            code = len(self._series)
            self._positions[key] = code
            self._series.append(key)
        return code

    def append(self, key: SeriesKey, value: float, weight: float = 1.0) -> int:
        """Buffer one pre-validated sample; returns the new pending count."""
        with self._lock:
            self._scalar_codes.append(self._code_locked(key))
            self._scalar_values.append(value)
            self._scalar_weights.append(weight)
            if weight != 1.0:
                self._weighted = True
            self._pending += 1
            return self._pending

    def append_batch(
        self,
        key: SeriesKey,
        values: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
    ) -> int:
        """Buffer one series' pre-validated value array; returns the pending count.

        The arrays are adopted, not copied — callers must not mutate them
        after handing them in (the registry's public entry points pass
        freshly validated/selected arrays).
        """
        with self._lock:
            code = self._code_locked(key)
            codes = np.full(values.size, code, dtype=np.int64)
            self._chunks.append((codes, values, weights))
            if weights is not None:
                self._weighted = True
            self._pending += int(values.size)
            return self._pending

    def append_grouped(
        self,
        keys: Sequence[SeriesKey],
        local_codes: "np.ndarray",
        values: "np.ndarray",
        weights: Optional["np.ndarray"] = None,
    ) -> int:
        """Buffer a pre-validated columnar sub-batch across several series.

        ``local_codes`` index into ``keys``; they are remapped onto the
        buffer's own group table so chunks from different calls can share
        one drained column.  Returns the new pending count.
        """
        with self._lock:
            remap = np.fromiter(
                (self._code_locked(key) for key in keys), dtype=np.int64, count=len(keys)
            )
            self._chunks.append((remap[local_codes], values, weights))
            if weights is not None:
                self._weighted = True
            self._pending += int(values.size)
            return self._pending

    def _reserve(self, name: str, size: int, dtype) -> "np.ndarray":
        """A ``size``-element view of the named reusable scratch array."""
        buffer = getattr(self, name)
        if buffer is None or buffer.size < size:
            buffer = np.empty(max(size, 4096), dtype=dtype)
            setattr(self, name, buffer)
        return buffer[:size]

    def take(self) -> Optional[DrainBatch]:
        """Atomically detach everything pending and return it as one batch.

        Returns ``None`` when nothing is pending.  The swap happens under
        the buffer lock; the (possibly large) concatenation work happens
        outside it, so producers are never blocked on a drain.  Only one
        drain per buffer may be in flight at a time (see
        :class:`DrainBatch`); the sharded registry serializes drains with
        its per-shard writer lock.
        """
        with self._lock:
            if self._pending == 0:
                return None
            series = self._series
            chunks = self._chunks
            scalar_codes = self._scalar_codes
            scalar_values = self._scalar_values
            scalar_weights = self._scalar_weights
            weighted = self._weighted
            pending = self._pending
            self._positions = {}
            self._series = []
            self._chunks = []
            self._scalar_codes = []
            self._scalar_values = []
            self._scalar_weights = []
            self._weighted = False
            self._pending = 0

        if scalar_codes:
            chunks.append(
                (
                    np.asarray(scalar_codes, dtype=np.int64),
                    np.asarray(scalar_values, dtype=np.float64),
                    np.asarray(scalar_weights, dtype=np.float64) if weighted else None,
                )
            )
        if len(chunks) == 1:
            codes, values, weights = chunks[0]
            if weighted and weights is None:
                weights = np.ones(values.size, dtype=np.float64)
            return DrainBatch(series, codes, values, weights, pending)

        total = sum(chunk[1].size for chunk in chunks)
        codes = self._reserve("_concat_codes", total, np.int64)
        values = self._reserve("_concat_values", total, np.float64)
        np.concatenate([chunk[0] for chunk in chunks], out=codes)
        np.concatenate([chunk[1] for chunk in chunks], out=values)
        weights: Optional["np.ndarray"] = None
        if weighted:
            weights = self._reserve("_concat_weights", total, np.float64)
            np.concatenate(
                [
                    chunk[2]
                    if chunk[2] is not None
                    else np.ones(chunk[1].size, dtype=np.float64)
                    for chunk in chunks
                ],
                out=weights,
            )
        return DrainBatch(series, codes, values, weights, pending)
