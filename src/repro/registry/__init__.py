"""High-cardinality sketch engine: many tagged series behind one registry.

The paper's monitoring scenario (Section 1) talks about "a metric", but a
production metric is a family of thousands of concrete series — one per
host/endpoint/status tag combination — and the queries that matter are
aggregations over arbitrary subsets of them.  Full mergeability
(Section 2.1) is exactly what makes DDSketch the right primitive for this
setting (compare Gan et al., "Moment-Based Quantile Sketches for Efficient
High Cardinality Aggregation Queries"): each series keeps its own sketch,
and any tag-filtered or metric-level answer is a merge with an intact
accuracy guarantee.

* :class:`SeriesKey` — the canonical ``(metric, tags)`` identity of one
  series (normalized, hashable, ordered).
* :class:`SketchRegistry` — owns one sketch per series, ingests columnar
  ``(series, value)`` batches through the grouped vectorized pipeline, and
  answers exact-series / tag-filtered / metric-rollup quantile queries.
* :class:`ShardedRegistry` — the concurrency tier: hash-partitions the
  series space across N single-writer shards, buffers writes in bounded
  per-shard columnar ingest queues (:mod:`repro.registry.ingest_queue`),
  drains them with one grouped ``bincount`` pass per shard (optionally on
  a thread pool), and answers queries by snapshot merge-on-read —
  bit-exact with an unsharded registry fed the same stream.
* Wire frames — a registry round-trips through the length-prefixed
  multi-sketch frame of :mod:`repro.serialization.frame`, so an agent
  flushes its whole series population in one payload (or one frame per
  shard, for the cross-process shard-per-worker layout).
"""

from repro.registry.series import SeriesKey, normalize_tags
from repro.registry.registry import SketchRegistry
from repro.registry.ingest_queue import ShardBuffer
from repro.registry.sharded import ShardedRegistry, shard_of

__all__ = [
    "SeriesKey",
    "SketchRegistry",
    "ShardedRegistry",
    "ShardBuffer",
    "normalize_tags",
    "shard_of",
]
