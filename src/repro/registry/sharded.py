"""Sharded concurrent ingestion engine: N single-writer shards, merge-on-read.

Full mergeability (paper Sections 2.1 and 2.3) is what makes a sharded write
path *correct by construction*: hash-partition the series space so each
:class:`~repro.registry.SeriesKey` lives in exactly one shard, let every
shard ingest independently, and answer any query by merging on read — the
merged sketch is identical to the one a single writer would have built,
with the full relative-error guarantee intact.  UDDSketch's mixed-alpha
fusion rule (Epicoco et al.) extends the same property to shards whose
sketches collapsed independently.

:class:`ShardedRegistry` implements that tier on top of the PR-4
:class:`~repro.registry.SketchRegistry`:

* **Writes** never touch a sketch directly.  ``record`` /
  ``record_batch`` / ``record_grouped`` hash-route their samples to
  per-shard bounded columnar buffers
  (:class:`~repro.registry.ingest_queue.ShardBuffer`); a buffer reaching
  its bound spills — drains into its shard synchronously — so memory stays
  bounded regardless of the record rate.
* **Flush** drains every buffer with one grouped ``bincount`` ingestion
  pass per shard (:meth:`~repro.registry.SketchRegistry.ingest_grouped`),
  optionally on a thread pool: the heavy NumPy work (``log`` keying,
  ``bincount`` accumulation) releases the GIL, so shard flushes genuinely
  overlap on multi-core machines.
* **Reads** are snapshot merge-on-read: the query drains the relevant
  buffers, copies the matching per-series sketches under each shard's
  writer lock, and merges the copies in sorted key order — bit-exact with
  an unsharded registry fed the same stream
  (``benchmarks/test_sharded_ingest_speed.py`` gates this).
* **Transport** reuses the frame-v3 codec: :meth:`ShardedRegistry.shard_frames`
  emits one multi-sketch wire frame per shard (the cross-process layout —
  one worker process per shard shipping its own frame), and
  :meth:`ShardedRegistry.merge_frame` routes a decoded frame's series back
  onto their home shards.

Concurrency contract: any number of threads may record concurrently with
flushes and queries.  Each shard's registry is mutated only while holding
that shard's writer lock (single-writer discipline), so per-series sketches
are never written by two threads at once; queries copy under the same lock,
so a returned answer is a consistent snapshot of every sample flushed — or
drained by the query itself — before it ran.  Samples still sitting in a
concurrent producer's unflushed buffer may or may not be included.
"""

from __future__ import annotations

import math
import os
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ddsketch import BaseDDSketch
from repro.exceptions import EmptySketchError, IllegalArgumentError
from repro.registry.ingest_queue import ShardBuffer
from repro.registry.registry import SketchRegistry
from repro.registry.series import SeriesKey, SeriesLike, TagsLike, normalize_tags

#: Default pending-sample bound per shard buffer before a spill flush.
DEFAULT_MAX_PENDING = 65_536


def shard_of(key: SeriesKey, num_shards: int) -> int:
    """The home shard of a series: a stable hash partition.

    Uses ``crc32`` of the rendered key rather than Python's ``hash`` so the
    partition is identical across processes and runs (``PYTHONHASHSEED``
    randomizes string hashing) — a requirement for the cross-process
    shard-per-worker layout, where every worker must agree on the routing.
    """
    return zlib.crc32(str(key).encode("utf-8")) % num_shards


class ShardedRegistry:
    """A sharded, concurrency-safe front-end over N ``SketchRegistry`` shards.

    Parameters
    ----------
    num_shards:
        Number of single-writer shards the series space is hash-partitioned
        into.
    sketch_factory:
        Zero-argument callable creating the sketch for a series the first
        time it receives data; forwarded to every shard (defaults to the
        paper's ``DDSketch(relative_accuracy=0.01)``).
    max_pending:
        Per-shard pending-sample bound of the ingest buffer; a record call
        pushing a buffer past the bound spills (drains that shard
        synchronously).
    flush_workers:
        Thread-pool width used by :meth:`flush`; defaults to
        ``min(num_shards, cpu_count)``.  ``1`` makes every flush
        sequential.

    Examples
    --------
    >>> import numpy as np
    >>> registry = ShardedRegistry(num_shards=4)
    >>> keys = [SeriesKey("latency", (("endpoint", "/home"),)),
    ...         SeriesKey("latency", (("endpoint", "/api"),))]
    >>> registry.record_grouped(keys, np.array([0, 1, 0]), np.array([1.0, 2.0, 3.0]))
    3
    >>> registry.flush() <= 3  # samples not already spilled are drained here
    True
    >>> registry.total_count()
    3.0
    >>> registry.quantile("latency", 0.5, tag_filter={"endpoint": "/home"}) > 0
    True
    """

    def __init__(
        self,
        num_shards: int = 8,
        sketch_factory: Optional[Callable[[], BaseDDSketch]] = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        flush_workers: Optional[int] = None,
    ) -> None:
        if num_shards < 1:
            raise IllegalArgumentError(f"num_shards must be positive, got {num_shards!r}")
        if max_pending < 1:
            raise IllegalArgumentError(f"max_pending must be positive, got {max_pending!r}")
        if flush_workers is not None and flush_workers < 1:
            raise IllegalArgumentError(
                f"flush_workers must be positive, got {flush_workers!r}"
            )
        self._num_shards = int(num_shards)
        self._max_pending = int(max_pending)
        self._flush_workers = int(
            flush_workers
            if flush_workers is not None
            else max(1, min(self._num_shards, os.cpu_count() or 1))
        )
        self._shards = [SketchRegistry(sketch_factory=sketch_factory) for _ in range(num_shards)]
        self._writer_locks = [threading.Lock() for _ in range(num_shards)]
        self._buffers = [ShardBuffer(self._max_pending) for _ in range(num_shards)]
        self._shard_cache: dict = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Partitioning
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Number of single-writer shards."""
        return self._num_shards

    @property
    def flush_workers(self) -> int:
        """Thread-pool width used by parallel flushes."""
        return self._flush_workers

    def shard_index(self, series: SeriesLike, tags: TagsLike = None) -> int:
        """The home shard of a series (stable across processes)."""
        return self._shard_of(SeriesKey.of(series, tags))

    def _shard_of(self, key: SeriesKey) -> int:
        # The cache write is a benign race: every thread computes the same
        # stable value for the same key.
        cached = self._shard_cache.get(key)
        if cached is None:
            cached = shard_of(key, self._num_shards)
            self._shard_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Ingestion (buffered writes)
    # ------------------------------------------------------------------ #

    def record(
        self,
        series: SeriesLike,
        value: float,
        weight: float = 1.0,
        tags: TagsLike = None,
    ) -> None:
        """Buffer one sample for one series (validated now, sketched at flush)."""
        key = SeriesKey.of(series, tags)
        value = float(value)
        weight = float(weight)
        if math.isnan(value) or math.isinf(value):
            raise IllegalArgumentError(f"value must be a finite number, got {value!r}")
        if not math.isfinite(weight) or weight <= 0.0:
            raise IllegalArgumentError(
                f"weight must be a positive finite number, got {weight!r}"
            )
        index = self._shard_of(key)
        if self._buffers[index].append(key, value, weight) >= self._max_pending:
            self._drain_shard(index)

    def record_batch(
        self,
        series: SeriesLike,
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
        tags: TagsLike = None,
    ) -> int:
        """Buffer a whole array for one series; returns the sample count."""
        key = SeriesKey.of(series, tags)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return 0
        values, weight_array = BaseDDSketch._coerce_values_weights(values, weights)
        # Buffered ingestion outlives this call, so the buffer must own its
        # arrays: copy defensively (coercion is a no-op view for an
        # already-float64 input, which would otherwise alias the caller's —
        # possibly reused — instrumentation buffer).
        values = values.copy()
        weight_array = None if weight_array is None else weight_array.copy()
        index = self._shard_of(key)
        if self._buffers[index].append_batch(key, values, weight_array) >= self._max_pending:
            self._drain_shard(index)
        return int(values.size)

    def record_grouped(
        self,
        series: Sequence[SeriesLike],
        group_indices: "np.ndarray",
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> int:
        """Buffer one columnar batch across many series, hash-split by shard.

        ``series`` lists one key per group and ``group_indices`` maps each
        sample to a position in that list (the shape of
        :meth:`SketchRegistry.ingest_grouped`).  The batch is validated up
        front — a rejected batch buffers nothing — then partitioned into
        per-shard sub-batches with NumPy masks; each sub-batch lands in its
        shard's buffer in one append.  Returns the number of samples
        buffered (or spilled).
        """
        keys = [SeriesKey.of(entry) for entry in series]
        group_indices = np.asarray(group_indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if group_indices.shape != values.shape:
            raise IllegalArgumentError(
                f"group_indices shape {group_indices.shape} does not match "
                f"values shape {values.shape}"
            )
        if group_indices.size == 0:
            return 0
        lowest = int(group_indices.min())
        highest = int(group_indices.max())
        if lowest < 0 or highest >= len(keys):
            raise IllegalArgumentError(
                f"group indices must be in [0, {len(keys)}), got range "
                f"[{lowest}, {highest}]"
            )
        values, weight_array = BaseDDSketch._coerce_values_weights(values, weights)

        shard_by_group = np.fromiter(
            (self._shard_of(key) for key in keys), dtype=np.int64, count=len(keys)
        )
        touched: List[int] = []
        if self._num_shards == 1 or shard_by_group.max() == shard_by_group.min():
            index = int(shard_by_group[0])
            # Single touched shard: the whole columns go in as-is, so copy
            # them defensively (the masked multi-shard path below produces
            # fresh arrays already); group codes are remapped — and thereby
            # copied — inside append_grouped.
            self._buffers[index].append_grouped(
                keys,
                group_indices,
                values.copy(),
                None if weight_array is None else weight_array.copy(),
            )
            touched.append(index)
        else:
            sample_shards = shard_by_group[group_indices]
            for index in np.unique(sample_shards).tolist():
                mask = sample_shards == index
                shard_groups = np.flatnonzero(shard_by_group == index)
                local_of_global = np.full(len(keys), -1, dtype=np.int64)
                local_of_global[shard_groups] = np.arange(shard_groups.size)
                self._buffers[index].append_grouped(
                    [keys[group] for group in shard_groups.tolist()],
                    local_of_global[group_indices[mask]],
                    values[mask],
                    None if weight_array is None else weight_array[mask],
                )
                touched.append(index)
        for index in touched:
            if self._buffers[index].pending >= self._max_pending:
                self._drain_shard(index)
        return int(values.size)

    # Registry-compatible aliases, so a ShardedRegistry can stand in for a
    # SketchRegistry behind a MetricAgent (the writes become buffered).
    add = record
    add_batch = record_batch
    ingest_grouped = record_grouped

    @property
    def pending_samples(self) -> int:
        """Samples buffered across all shards, not yet flushed into sketches."""
        return sum(buffer.pending for buffer in self._buffers)

    # ------------------------------------------------------------------ #
    # Flush
    # ------------------------------------------------------------------ #

    def _drain_locked(self, index: int) -> int:
        """Drain shard ``index``'s buffer into its registry (lock held)."""
        batch = self._buffers[index].take()
        if batch is None:
            return 0
        self._shards[index].ingest_grouped(
            batch.series, batch.group_indices, batch.values, batch.weights
        )
        return batch.count

    def _drain_shard(self, index: int) -> int:
        """Drain one shard under its writer lock; returns samples drained."""
        with self._writer_locks[index]:
            return self._drain_locked(index)

    def flush(self, parallel: Optional[bool] = None) -> int:
        """Drain every shard buffer into its sketches; returns samples flushed.

        With ``parallel`` unset, the flush uses the configured thread pool
        whenever ``flush_workers > 1``.  Each worker drains whole shards
        (never splitting one shard across threads — the single-writer
        discipline), and the grouped ``bincount`` ingestion inside each
        drain releases the GIL, so drains overlap on multi-core machines.
        The pool is created lazily on the first parallel flush and reused
        afterwards (steady-state flush loops do not respawn worker
        threads); :meth:`close` tears it down.
        """
        if parallel is None:
            parallel = self._flush_workers > 1
        if not parallel or self._num_shards == 1:
            return sum(self._drain_shard(index) for index in range(self._num_shards))
        return sum(self._flush_pool().map(self._drain_shard, range(self._num_shards)))

    def _flush_pool(self) -> ThreadPoolExecutor:
        """The lazily created, reused flush thread pool."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(self._flush_workers, self._num_shards),
                    thread_name_prefix="repro-shard-flush",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the flush thread pool (idempotent).

        Later parallel flushes recreate it on demand; calling this is only
        needed when tearing a registry down promptly instead of waiting
        for interpreter exit.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Snapshot merge-on-read
    # ------------------------------------------------------------------ #

    def _snapshot_entries(
        self, metric: Optional[str] = None, tag_filter: TagsLike = None
    ) -> List[Tuple[SeriesKey, BaseDDSketch]]:
        """Copies of every matching ``(key, sketch)`` pair, in sorted key order.

        Each shard is drained and copied under its writer lock, so the
        snapshot reflects everything recorded before the call (by quiescent
        producers) and is immune to concurrent mutation afterwards.
        """
        entries: List[Tuple[SeriesKey, BaseDDSketch]] = []
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                shard = self._shards[index]
                for key in shard.series_keys(metric, tag_filter):
                    entries.append((key, shard.get(key).copy()))
        entries.sort(key=lambda entry: entry[0])
        return entries

    def snapshot(self) -> SketchRegistry:
        """A point-in-time unsharded copy of the whole registry.

        The returned :class:`SketchRegistry` owns independent sketch copies;
        it is bit-exact with an unsharded registry fed the same stream and
        safe to query while writers keep recording into ``self``.
        """
        snapshot = SketchRegistry()
        for key, sketch in self._snapshot_entries():
            snapshot.merge_series(key, sketch, copy=False)
        return snapshot

    def query_engine(
        self,
        cube_dimensions: Sequence[Sequence[str]] = (),
        cache_capacity: int = 128,
    ) -> "QueryEngine":
        """A :class:`~repro.query.QueryEngine` over a fresh :meth:`snapshot`.

        The engine's cube and cache are derived from point-in-time copies,
        so queries stay consistent (and lock-free) while writers keep
        recording into this sharded registry; build a new engine to observe
        later writes.
        """
        return self.snapshot().query_engine(
            cube_dimensions=cube_dimensions, cache_capacity=cache_capacity
        )

    # ------------------------------------------------------------------ #
    # Series access / statistics
    # ------------------------------------------------------------------ #

    def get(self, series: SeriesLike, tags: TagsLike = None) -> BaseDDSketch:
        """A copy of one series' sketch; raises :class:`EmptySketchError` if unknown."""
        key = SeriesKey.of(series, tags)
        index = self._shard_of(key)
        with self._writer_locks[index]:
            self._drain_locked(index)
            return self._shards[index].get(key).copy()

    def series_keys(
        self, metric: Optional[str] = None, tag_filter: TagsLike = None
    ) -> List[SeriesKey]:
        """Sorted keys of the stored series, optionally filtered."""
        keys: List[SeriesKey] = []
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                keys.extend(self._shards[index].series_keys(metric, tag_filter))
        return sorted(keys)

    def metrics(self) -> List[str]:
        """Sorted names of the metrics with at least one series."""
        return sorted({key.metric for key in self.series_keys()})

    @property
    def num_series(self) -> int:
        """Number of stored series across all shards."""
        return len(self.series_keys())

    def __len__(self) -> int:
        return self.num_series

    def __contains__(self, series: SeriesLike) -> bool:
        key = SeriesKey.of(series)
        index = self._shard_of(key)
        with self._writer_locks[index]:
            self._drain_locked(index)
            return key in self._shards[index]

    def __iter__(self) -> Iterator[Tuple[SeriesKey, BaseDDSketch]]:
        """Iterate ``(key, sketch-copy)`` pairs in sorted key order (a snapshot)."""
        return iter(self._snapshot_entries())

    def total_count(self, metric: Optional[str] = None, tag_filter: TagsLike = None) -> float:
        """Total inserted weight over the matching series (0.0 when none match)."""
        total = 0.0
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                total += self._shards[index].total_count(metric, tag_filter)
        return total

    def size_in_bytes(self) -> int:
        """Modelled memory footprint of every stored sketch."""
        total = 0
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                total += self._shards[index].size_in_bytes()
        return total

    def clear(self) -> None:
        """Drop every series and every buffered sample."""
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._buffers[index].take()
                self._shards[index].clear()
        # Routing entries for dropped series would otherwise accumulate
        # forever across flush/clear cycles of churning series.
        self._shard_cache = {}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def rollup(self, metric: str, tag_filter: TagsLike = None) -> BaseDDSketch:
        """Merge every matching series into a new sketch (snapshot merge-on-read).

        Matching series are copied shard by shard and merged in sorted key
        order — the same order :meth:`SketchRegistry.rollup` uses, so the
        result is bit-exact with the unsharded registry.  Raises
        :class:`EmptySketchError` when nothing matches.
        """
        entries = self._snapshot_entries(metric, tag_filter)
        if not entries:
            raise EmptySketchError(
                f"no data for metric {metric!r}"
                + (f" with tags {dict(normalize_tags(tag_filter))}" if tag_filter else "")
            )
        merged = entries[0][1]
        for _, sketch in entries[1:]:
            merged.merge(sketch)
        return merged

    def quantile(
        self,
        metric: str,
        quantile: float,
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
    ) -> float:
        """One quantile of a metric: exact series, tag-filtered, or rollup."""
        return self.quantiles(metric, (quantile,), tags=tags, tag_filter=tag_filter)[0]

    def quantiles(
        self,
        metric: str,
        quantiles: Sequence[float],
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
    ) -> List[float]:
        """Several quantiles from one merged read (single cumulative pass).

        Mirrors :meth:`SketchRegistry.quantiles` exactly — same query
        shapes (``tags`` exact series, ``tag_filter`` filtered merge,
        neither the metric rollup), same error contract, bit-exact
        answers.
        """
        for value in quantiles:
            if not 0 <= value <= 1:  # rejects NaN as well
                raise IllegalArgumentError(f"quantile must be in [0, 1], got {value!r}")
        if tags is not None and tag_filter is not None:
            raise IllegalArgumentError("pass either tags (exact series) or tag_filter, not both")
        if tags is not None:
            sketch: BaseDDSketch = self.get(metric, tags)
        else:
            sketch = self.rollup(metric, tag_filter)
        values = sketch.get_quantiles(quantiles)
        if any(value is None for value in values):
            raise EmptySketchError(f"no data for metric {metric!r}")
        return [float(value) for value in values]

    # ------------------------------------------------------------------ #
    # Wire frames (cross-process shard transport)
    # ------------------------------------------------------------------ #

    def to_frame(self) -> bytes:
        """Serialize every series into one multi-sketch wire frame (v3).

        Entries are emitted in sorted key order — byte-identical to the
        frame an unsharded :class:`SketchRegistry` fed the same stream
        would emit.
        """
        from repro.serialization.frame import encode_frame

        return encode_frame(self._snapshot_entries())

    def flush_frame(self) -> bytes:
        """Serialize every series into one frame, then drop the local state.

        Snapshot-and-clear happens **atomically per shard** (under each
        shard's writer lock), so a sample recorded concurrently either
        makes this frame or stays buffered for the next one — never lost.
        The cleared shard dictionaries drop their references, so the
        collected sketches are exclusively ours and need no copies before
        encoding.
        """
        from repro.serialization.frame import encode_frame

        entries: List[Tuple[SeriesKey, BaseDDSketch]] = []
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                shard = self._shards[index]
                for key in shard.series_keys():
                    entries.append((key, shard.get(key)))
                shard.clear()
        entries.sort(key=lambda entry: entry[0])
        return encode_frame(entries)

    def shard_frames(self, clear: bool = False) -> List[Tuple[int, bytes]]:
        """One ``(num_series, frame)`` pair per non-empty shard.

        This is the cross-process transport layout: one worker process per
        shard can ship its own frame independently, and any consumer that
        understands frame v3 (an :class:`~repro.monitoring.Aggregator`,
        another registry's :meth:`merge_frame`) reassembles the population
        by merge — order-independent, by full mergeability.  With
        ``clear=True`` each shard is reset after encoding (a per-shard
        flush).
        """
        frames: List[Tuple[int, bytes]] = []
        for index in range(self._num_shards):
            with self._writer_locks[index]:
                self._drain_locked(index)
                shard = self._shards[index]
                if shard.num_series == 0:
                    continue
                frames.append((shard.num_series, shard.to_frame()))
                if clear:
                    shard.clear()
        return frames

    def merge_frame(self, payload: bytes) -> int:
        """Decode one frame and merge every carried series onto its home shard.

        Returns the number of series merged.  Raises
        :class:`~repro.exceptions.DeserializationError` for malformed
        payloads (nothing is merged in that case — decoding happens before
        any routing).
        """
        from repro.serialization.frame import decode_frame

        entries = decode_frame(payload)
        for key, sketch in entries:
            index = self._shard_of(key)
            with self._writer_locks[index]:
                self._shards[index].merge_series(key, sketch, copy=False)
        return len(entries)

    @classmethod
    def from_frames(
        cls,
        payloads: Sequence[bytes],
        num_shards: int = 8,
        sketch_factory: Optional[Callable[[], BaseDDSketch]] = None,
    ) -> "ShardedRegistry":
        """Rebuild a sharded registry from any number of wire frames."""
        registry = cls(num_shards=num_shards, sketch_factory=sketch_factory)
        for payload in payloads:
            registry.merge_frame(payload)
        return registry

    def __repr__(self) -> str:
        return (
            f"ShardedRegistry(num_shards={self._num_shards}, "
            f"num_series={self.num_series}, pending_samples={self.pending_samples})"
        )
