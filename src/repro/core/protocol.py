"""The common protocol implemented by every quantile sketch in this package.

The evaluation harness (Section 4 of the paper) compares DDSketch with
GKArray, HDR Histogram, and the Moments sketch.  To drive all of them with the
same workload code, every sketch — the core contribution and every baseline —
implements the small :class:`QuantileSketch` protocol defined here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, runtime_checkable


@runtime_checkable
class QuantileSketch(Protocol):
    """Structural protocol shared by DDSketch and every baseline sketch."""

    def add(self, value: float, weight: float = 1.0) -> None:
        """Insert ``value`` with multiplicity ``weight`` into the sketch."""
        ...

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch of the same type and parameters into this one."""
        ...

    def get_quantile_value(self, quantile: float) -> Optional[float]:
        """Return an estimate of the ``quantile``-quantile, or None if empty."""
        ...

    @property
    def count(self) -> float:
        """Total weight inserted so far."""
        ...

    def size_in_bytes(self) -> int:
        """Modelled memory footprint of the sketch in bytes."""
        ...


@dataclass(frozen=True)
class SketchMetadata:
    """Static properties of a sketch algorithm, as summarized in Table 1."""

    name: str
    guarantee: str  # "relative", "rank", or "avg rank"
    value_range: str  # "arbitrary" or "bounded"
    mergeability: str  # "full" or "one-way"


#: Table 1 of the paper: properties of the quantile sketching algorithms.
TABLE1_METADATA = {
    "DDSketch": SketchMetadata("DDSketch", "relative", "arbitrary", "full"),
    "HDRHistogram": SketchMetadata("HDRHistogram", "relative", "bounded", "full"),
    "GKArray": SketchMetadata("GKArray", "rank", "arbitrary", "one-way"),
    "MomentsSketch": SketchMetadata("MomentsSketch", "avg rank", "bounded", "full"),
}


def sketch_metadata(name: str) -> SketchMetadata:
    """Return the Table 1 metadata row for a sketch algorithm by name."""
    return TABLE1_METADATA[name]


def add_all(sketch: QuantileSketch, values: Iterable[float]) -> QuantileSketch:
    """Insert every value of an iterable into ``sketch`` and return it.

    Sketches that expose the optional vectorized ``add_batch`` extension
    (currently DDSketch and the exact baseline) ingest NumPy arrays through
    it in one call; every other sketch/iterable combination falls back to
    the per-item protocol method, so the harness can drive the baselines of
    Table 1 and the batch-capable sketches with the same workload code.
    """
    import numpy as np

    add_batch = getattr(sketch, "add_batch", None)
    if add_batch is not None and isinstance(values, np.ndarray):
        add_batch(values)
        return sketch
    for value in values:
        sketch.add(value)
    return sketch


def quantiles_of(sketch: QuantileSketch, quantiles: Iterable[float]) -> List[Optional[float]]:
    """Query several quantiles from a sketch at once."""
    return [sketch.get_quantile_value(q) for q in quantiles]
