"""Core DDSketch implementation: the paper's primary contribution.

The central class is :class:`DDSketch`, a fully-mergeable quantile sketch with
a relative-error guarantee.  Preset subclasses configure the mapping/store
combinations evaluated in the paper (memory-optimal, fast, unbounded, sparse).
"""

from repro.core.ddsketch import BaseDDSketch, DDSketch
from repro.core.grouped import GroupedIngest
from repro.core.uddsketch import UDDSketch, DEFAULT_UNIFORM_BIN_LIMIT
from repro.core.presets import (
    LogCollapsingLowestDenseDDSketch,
    LogCollapsingHighestDenseDDSketch,
    LogUnboundedDenseDDSketch,
    FastDDSketch,
    SparseDDSketch,
    PaperDDSketch,
    UniformCollapsingDDSketch,
)
from repro.core.protocol import QuantileSketch, sketch_metadata, SketchMetadata

__all__ = [
    "BaseDDSketch",
    "DDSketch",
    "LogCollapsingLowestDenseDDSketch",
    "LogCollapsingHighestDenseDDSketch",
    "LogUnboundedDenseDDSketch",
    "FastDDSketch",
    "SparseDDSketch",
    "PaperDDSketch",
    "UDDSketch",
    "UniformCollapsingDDSketch",
    "DEFAULT_UNIFORM_BIN_LIMIT",
    "GroupedIngest",
    "QuantileSketch",
    "SketchMetadata",
    "sketch_metadata",
]
