"""DDSketch: a fast, fully-mergeable quantile sketch with relative-error guarantees.

This module implements the sketch described in Section 2 of the paper.  The
sketch assigns every value to a logarithmically-sized bucket (via a
:class:`~repro.mapping.KeyMapping`), counts per-bucket weights in a
:class:`~repro.store.Store`, and answers quantile queries by walking the
buckets in key order until the cumulative count passes the requested rank.
Values within any bucket are within a relative distance ``alpha`` of the
bucket's representative value (Lemma 2), so every reported quantile is an
``alpha``-accurate estimate (Proposition 3).

On top of the paper's positive-value sketch, this implementation adds the
extensions discussed in Section 2.2:

* a mirrored second store for negative values,
* a dedicated counter for zero (and near-zero) values,
* exact tracking of count, sum, min and max,
* weighted insertion and deletion,
* merging of sketches that share the same mapping (fully mergeable), and
* serialization to/from plain dictionaries (see :mod:`repro.serialization`
  for compact binary encodings).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import kernel
from repro.exceptions import (
    EmptySketchError,
    IllegalArgumentError,
    ReproError,
    UnequalSketchParametersError,
)
from repro.mapping import KeyMapping, LogarithmicMapping
from repro.mapping.base import mapping_registry
from repro.store import CollapsingLowestDenseStore, CollapsingHighestDenseStore, Store

#: Default number of buckets for the bounded default sketch; matches the
#: paper's experiments (Table 2) where m = 2048 covers values from roughly
#: 80 microseconds to 1 year at alpha = 0.01.
DEFAULT_BIN_LIMIT = 2048

#: Default relative accuracy; matches the paper's experiments (Table 2).
DEFAULT_RELATIVE_ACCURACY = 0.01


class BaseDDSketch:
    """Quantile sketch with relative-error guarantees over arbitrary reals.

    This class implements the sketch mechanics for a given key mapping and a
    pair of stores; the ready-to-use configurations live in
    :mod:`repro.core.presets` and :class:`DDSketch` below.

    Parameters
    ----------
    mapping:
        The :class:`~repro.mapping.KeyMapping` translating values to bucket
        keys; its ``relative_accuracy`` is the sketch's accuracy guarantee.
    store:
        Bucket store for positive values.
    negative_store:
        Bucket store for the magnitudes of negative values.
    zero_count:
        Initial weight of the zero bucket (used when deserializing).
    """

    def __init__(
        self,
        mapping: KeyMapping,
        store: Store,
        negative_store: Store,
        zero_count: float = 0.0,
    ) -> None:
        self._mapping = mapping
        self._store = store
        self._negative_store = negative_store
        self._zero_count = float(zero_count)

        self._min = float("inf")
        self._max = float("-inf")
        self._count = float(zero_count)
        self._sum = 0.0

    # ------------------------------------------------------------------ #
    # Scalar summaries
    # ------------------------------------------------------------------ #

    @property
    def relative_accuracy(self) -> float:
        """The relative accuracy ``alpha`` guaranteed for quantile estimates."""
        return self._mapping.relative_accuracy

    @property
    def gamma(self) -> float:
        """The bucket growth factor ``(1 + alpha) / (1 - alpha)``."""
        return self._mapping.gamma

    @property
    def mapping(self) -> KeyMapping:
        """The key mapping used by this sketch."""
        return self._mapping

    @property
    def store(self) -> Store:
        """The store holding positive-value buckets."""
        return self._store

    @property
    def negative_store(self) -> Store:
        """The store holding negative-value buckets (keyed by magnitude)."""
        return self._negative_store

    @property
    def count(self) -> float:
        """Total inserted weight."""
        return self._count

    @property
    def total_count(self) -> float:
        """Alias of :attr:`count`.

        Mirrors the ``total_count`` properties of the aggregation containers
        (:class:`~repro.monitoring.SketchTimeSeries`,
        :class:`~repro.core.GroupedIngest`), so generic code can read
        ``total_count`` off a sketch or a container of sketches alike.
        (:meth:`repro.registry.SketchRegistry.total_count` is a *method*, as
        it takes metric/tag filters.)
        """
        return self._count

    @property
    def zero_count(self) -> float:
        """Weight assigned to the dedicated zero bucket."""
        return self._zero_count

    @property
    def sum(self) -> float:
        """Exact sum of all inserted values (weighted)."""
        return self._sum

    @property
    def avg(self) -> float:
        """Exact average of all inserted values (weighted)."""
        if self._count <= 0:
            raise EmptySketchError("cannot compute the average of an empty sketch")
        return self._sum / self._count

    @property
    def min(self) -> float:
        """Exact minimum inserted value."""
        if self._count <= 0:
            raise EmptySketchError("cannot compute the minimum of an empty sketch")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum inserted value."""
        if self._count <= 0:
            raise EmptySketchError("cannot compute the maximum of an empty sketch")
        return self._max

    @property
    def is_empty(self) -> bool:
        """Whether no weight has been inserted (or everything was deleted)."""
        return self._count <= 0

    @property
    def num_buckets(self) -> int:
        """Number of non-empty buckets across both stores (plus the zero bucket)."""
        zero_bucket = 1 if self._zero_count > 0 else 0
        return self._store.num_buckets + self._negative_store.num_buckets + zero_bucket

    def size_in_bytes(self) -> int:
        """Modelled memory footprint in bytes (see :meth:`Store.size_in_bytes`)."""
        # 5 scalar summaries of 8 bytes each on top of the two stores.
        return self._store.size_in_bytes() + self._negative_store.size_in_bytes() + 40

    # ------------------------------------------------------------------ #
    # Insertion and deletion
    # ------------------------------------------------------------------ #

    def add(self, value: float, weight: float = 1.0) -> None:
        """Insert ``value`` into the sketch with multiplicity ``weight``.

        ``weight`` may be fractional but must be positive.  Values whose
        magnitude is below the mapping's smallest indexable value are counted
        in the dedicated zero bucket (Section 2.2 of the paper).
        """
        if weight <= 0 or math.isnan(weight) or math.isinf(weight):
            raise IllegalArgumentError(f"weight must be a positive finite number, got {weight!r}")
        if math.isnan(value) or math.isinf(value):
            raise IllegalArgumentError(f"value must be a finite number, got {value!r}")

        sign, key = kernel.classify_value(self._mapping, value)
        if sign == kernel.POSITIVE:
            self._store.add(key, weight)
        elif sign == kernel.NEGATIVE:
            self._negative_store.add(key, weight)
        else:
            self._zero_count += weight

        self._count += weight
        self._sum += value * weight
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def delete(self, value: float, weight: float = 1.0) -> None:
        """Remove ``weight`` worth of ``value`` from the sketch.

        Deletion is supported because the bucket boundaries do not depend on
        the data (Section 2.1).  The exact ``min``/``max``/``sum`` summaries
        become upper/lower bounds after a deletion since the sketch cannot
        know whether the deleted value was the extreme one.
        """
        if weight <= 0 or math.isnan(weight) or math.isinf(weight):
            raise IllegalArgumentError(f"weight must be a positive finite number, got {weight!r}")
        if math.isnan(value) or math.isinf(value):
            raise IllegalArgumentError(f"value must be a finite number, got {value!r}")
        if self._count <= 0:
            return

        removable = min(weight, self._count)
        sign, key = kernel.classify_value(self._mapping, value)
        if sign == kernel.POSITIVE:
            self._store.remove(key, removable)
        elif sign == kernel.NEGATIVE:
            self._negative_store.remove(key, removable)
        else:
            self._zero_count = max(0.0, self._zero_count - removable)

        self._count = max(0.0, self._count - removable)
        self._sum -= value * removable
        if self._count == 0:
            self._min = float("inf")
            self._max = float("-inf")
            self._sum = 0.0

    def add_batch(
        self,
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> "BaseDDSketch":
        """Insert a whole array of values at once (vectorized hot path).

        This is the batch counterpart of :meth:`add` and the entry point of
        the columnar ingestion pipeline: one
        :func:`repro.kernel.compute_keys` pass performs the sign/zero split
        and the bucket-key computation, and each store accumulates its
        sign's :class:`~repro.kernel.Selection` through the segment hook
        (``Store._add_selection``).  The exact ``count``, ``sum``, ``min``
        and ``max`` summaries are updated from array reductions.

        Parameters
        ----------
        values : numpy.ndarray
            Finite floats (any shape; flattened).  Anything array-like that
            ``numpy.asarray`` accepts works, but an existing ``float64``
            array is ingested without copying.
        weights : float or numpy.ndarray, optional
            Positive finite multiplicities: either one scalar applied to
            every value or an array of the same length as ``values``.
            Omitted means weight 1 per value.

        Returns
        -------
        BaseDDSketch
            ``self``, for chaining.

        Raises
        ------
        IllegalArgumentError
            If any value or weight is non-finite, any weight is not
            positive, or the shapes do not match.  Validation happens before
            any mutation, so a rejected batch leaves the sketch unchanged
            (unlike a per-item loop, which would raise halfway through).

        Notes
        -----
        ``O(len(values))`` — one key computation and one counter
        accumulation per value, as in Section 2.1 of the paper, without the
        per-value Python call chain.  This method is a thin adapter over
        :mod:`repro.kernel`: the sign split and key computation run in the
        active kernel backend (NumPy or compiled), the stores consume the
        resulting per-sign selections through their segment hooks, and the
        exact summaries come from shared array reductions — so the resulting
        sketch is bit-identical across backends, and identical to looping
        :meth:`add` over the batch (same buckets and counts, same
        ``count``/``min``/``max``; ``sum`` may differ only by summation
        order).
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return self
        values, weight_array = kernel.coerce_values_weights(values, weights)

        split = kernel.compute_keys(self._mapping, values)
        if split.num_positive:
            self._store._add_selection(split.selection(kernel.POSITIVE, weight_array))
        if split.num_negative:
            self._negative_store._add_selection(
                split.selection(kernel.NEGATIVE, weight_array)
            )

        if weight_array is None:
            zero_weight = float(split.num_zero)
            total_weight = float(values.size)
            batch_sum = float(values.sum())
        else:
            zero_weight = float(weight_array[split.zero_mask].sum())
            total_weight = float(weight_array.sum())
            batch_sum = float((values * weight_array).sum())

        self._zero_count += zero_weight
        self._count += total_weight
        self._sum += batch_sum
        batch_min = float(values.min())
        batch_max = float(values.max())
        if batch_min < self._min:
            self._min = batch_min
        if batch_max > self._max:
            self._max = batch_max
        return self

    @staticmethod
    def _coerce_values_weights(
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]],
    ) -> "Tuple[np.ndarray, Optional[np.ndarray]]":
        """Normalize and validate one ingestion batch (shared by the batch
        and grouped entry points).  Thin compatibility alias for
        :func:`repro.kernel.coerce_values_weights`, the single audited
        entry point for the zero/negative/NaN filtering semantics."""
        return kernel.coerce_values_weights(values, weights)

    @staticmethod
    def add_grouped_batch(
        sketches: Sequence["BaseDDSketch"],
        group_indices: "np.ndarray",
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
        scratch: Optional["GroupedScratch"] = None,
    ) -> None:
        """Ingest one columnar batch into many sketches at once (group-by path).

        This is the sketch half of the high-cardinality ingestion pipeline:
        a batch arrives as parallel ``(group_index, value)`` columns — one
        series per group — and is folded into ``sketches[group]`` without a
        Python-level loop over the samples.

        When every sketch shares the same mapping and uses plain (unbounded)
        dense stores, the whole batch is keyed with **one**
        :meth:`~repro.mapping.KeyMapping.key_batch` call per sign and
        accumulated across all groups with one combined ``bincount``
        (:func:`repro.store.grouped.add_grouped_batch`); the exact per-sketch
        ``count``/``sum``/``min``/``max`` summaries come from grouped array
        reductions.  Any other configuration — bounded or sparse stores,
        sketches whose mappings have diverged (e.g. independently collapsed
        :class:`~repro.core.UDDSketch` series) — falls back to one stable
        sort plus a per-group :meth:`add_batch` slice, which preserves each
        sketch type's semantics exactly (collapse windows, adaptive alpha,
        bucket limits).

        Parameters
        ----------
        sketches:
            The target sketches; ``group_indices`` values index into this
            sequence.
        group_indices : numpy.ndarray
            Integer group index per sample, each in ``[0, len(sketches))``.
        values : numpy.ndarray
            Finite floats, parallel to ``group_indices``.
        weights : float or numpy.ndarray, optional
            Positive finite multiplicities (scalar or per-sample array).
        scratch : repro.store.GroupedScratch, optional
            Reusable flat-index scratch for the combined ``bincount`` pass;
            single-writer callers that flush repeatedly (registry shards)
            pass one to avoid reallocating the batch-sized temporary every
            flush.  Results are bit-identical with or without it.

        Notes
        -----
        The result is identical to splitting the columns by group and calling
        ``sketches[g].add_batch`` per group — and therefore to looping
        :meth:`add` per sample (bit-for-bit for unit weights; ``sum`` matches
        the per-item loop's left-to-right accumulation order).
        """
        from repro.store.grouped import add_grouped_batch as store_add_grouped
        from repro.store.grouped import group_totals

        sketches = list(sketches)
        num_groups = len(sketches)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        group_indices = np.asarray(group_indices, dtype=np.int64).reshape(-1)
        if group_indices.shape != values.shape:
            raise IllegalArgumentError(
                f"group_indices shape {group_indices.shape} does not match "
                f"values shape {values.shape}"
            )
        if values.size == 0:
            return
        if num_groups == 0:
            raise IllegalArgumentError("cannot ingest a grouped batch into zero sketches")
        if int(group_indices.min()) < 0 or int(group_indices.max()) >= num_groups:
            raise IllegalArgumentError(
                f"group indices must be in [0, {num_groups}), got range "
                f"[{int(group_indices.min())}, {int(group_indices.max())}]"
            )
        values, weight_array = kernel.coerce_values_weights(values, weights)

        from repro.store.dense import DenseStore

        mapping = sketches[0]._mapping
        shared_fast_path = all(
            type(sketch).add_batch is BaseDDSketch.add_batch
            and type(sketch._store) is DenseStore
            and type(sketch._negative_store) is DenseStore
            and sketch._mapping == mapping
            for sketch in sketches
        )

        if not shared_fast_path:
            # Per-group fallback: one stable sort, then each group's slice
            # through its own add_batch (full subclass semantics preserved).
            order = np.argsort(group_indices, kind="stable")
            sorted_groups = group_indices[order]
            sorted_values = values[order]
            sorted_weights = None if weight_array is None else weight_array[order]
            boundaries = np.searchsorted(sorted_groups, np.arange(num_groups + 1))
            for group in np.unique(sorted_groups).tolist():
                low, high = int(boundaries[group]), int(boundaries[group + 1])
                sketches[group].add_batch(
                    sorted_values[low:high],
                    None if sorted_weights is None else sorted_weights[low:high],
                )
            return

        split = kernel.compute_keys(mapping, values)
        if split.num_positive:
            positive_mask = split.positive_mask
            store_add_grouped(
                [sketch._store for sketch in sketches],
                group_indices[positive_mask],
                split.keys_for(kernel.POSITIVE),
                None if weight_array is None else weight_array[positive_mask],
                scratch=scratch,
            )
        if split.num_negative:
            negative_mask = split.negative_mask
            store_add_grouped(
                [sketch._negative_store for sketch in sketches],
                group_indices[negative_mask],
                split.keys_for(kernel.NEGATIVE),
                None if weight_array is None else weight_array[negative_mask],
                scratch=scratch,
            )

        zero_mask = split.zero_mask
        zero_add = group_totals(num_groups, group_indices[zero_mask],
                                None if weight_array is None else weight_array[zero_mask])
        count_add = group_totals(num_groups, group_indices, weight_array)
        sum_add = np.bincount(
            group_indices,
            weights=values if weight_array is None else values * weight_array,
            minlength=num_groups,
        )

        # Per-group min/max via scatter reductions — min and max are
        # order-independent, so the unordered accumulation is exact.
        group_mins = np.full(num_groups, np.inf)
        group_maxs = np.full(num_groups, -np.inf)
        np.minimum.at(group_mins, group_indices, values)
        np.maximum.at(group_maxs, group_indices, values)

        for group in np.flatnonzero(count_add > 0.0).tolist():
            sketch = sketches[group]
            sketch._zero_count += float(zero_add[group])
            sketch._count += float(count_add[group])
            sketch._sum += float(sum_add[group])
            batch_min = float(group_mins[group])
            batch_max = float(group_maxs[group])
            if batch_min < sketch._min:
                sketch._min = batch_min
            if batch_max > sketch._max:
                sketch._max = batch_max

    def add_all(self, values: Iterable[float]) -> "BaseDDSketch":
        """Insert every value from an iterable; returns ``self`` for chaining.

        NumPy arrays are routed through the vectorized :meth:`add_batch`
        path; any other iterable falls back to the per-item loop.
        """
        if isinstance(values, np.ndarray):
            return self.add_batch(values)
        for value in values:
            self.add(value)
        return self

    # ------------------------------------------------------------------ #
    # Quantile queries
    # ------------------------------------------------------------------ #

    def get_quantile_value(self, quantile: float) -> Optional[float]:
        """Return an ``alpha``-accurate estimate of the ``quantile``-quantile.

        Uses the paper's lower-quantile definition: the returned estimate is
        within relative distance ``alpha`` of the item whose rank is
        ``floor(1 + q * (n - 1))`` in the sorted multiset.  Returns ``None``
        for an empty sketch or a quantile outside ``[0, 1]``.

        Delegates to :meth:`get_quantiles`, so single-quantile and batched
        reads share one code path and always agree exactly.
        """
        return self.get_quantiles((quantile,))[0]

    def get_quantiles(self, quantiles: Sequence[float]) -> List[Optional[float]]:
        """Return estimates for several quantiles at once (vectorized).

        The batched counterpart of :meth:`get_quantile_value` and the read
        half of the array-oriented pipeline: all requested ranks are resolved
        against each store with **one** cumulative-count pass plus a single
        ``searchsorted`` (:meth:`~repro.store.Store.key_at_rank_batch` /
        ``key_at_reversed_rank_batch``), and the resulting keys are converted
        back to values with one vectorized
        :meth:`~repro.mapping.KeyMapping.value_batch` call per sign — instead
        of one full bucket scan per quantile.

        Parameters
        ----------
        quantiles:
            Any sequence of quantiles.  Entries outside ``[0, 1]`` yield
            ``None`` in the matching output slot; an empty sketch yields all
            ``None``.

        Returns
        -------
        list of float or None
            One estimate per requested quantile, in input order, each
            identical to what :meth:`get_quantile_value` returns for that
            quantile alone.

        Notes
        -----
        ``O(num_buckets + len(quantiles) * log(num_buckets))`` with
        NumPy-level constants, versus ``O(num_buckets * len(quantiles))``
        Python-level bucket scans for repeated single-quantile calls.
        """
        qs = np.asarray(list(quantiles), dtype=np.float64).reshape(-1)
        results: List[Optional[float]] = [None] * qs.size
        if qs.size == 0 or self._count == 0:
            return results

        valid = (qs >= 0.0) & (qs <= 1.0)
        # Clamp at rank 0: when the total weight is below 1 (possible with
        # fractional weights) the raw rank goes negative, which would route
        # the query into a store that may hold no weight at all.  For any
        # non-negative rank the clamp is the identity, so this changes
        # nothing on the unit-weight path.
        ranks = np.maximum(qs * (self._count - 1), 0.0)
        negative_count = self._negative_store.count
        zero_boundary = self._zero_count + negative_count

        negative_mask = valid & (ranks < negative_count)
        zero_mask = valid & ~negative_mask & (ranks < zero_boundary)
        positive_mask = valid & (ranks >= zero_boundary)

        if negative_mask.any():
            keys = self._negative_store.key_at_reversed_rank_batch(ranks[negative_mask])
            values = -self._mapping.value_batch(keys)
            for index, value in zip(np.flatnonzero(negative_mask).tolist(), values.tolist()):
                results[index] = value
        for index in np.flatnonzero(zero_mask).tolist():
            results[index] = 0.0
        if positive_mask.any():
            store_ranks = ranks[positive_mask] - self._zero_count - negative_count
            keys = self._store.key_at_rank_batch(store_ranks)
            values = self._mapping.value_batch(keys)
            for index, value in zip(np.flatnonzero(positive_mask).tolist(), values.tolist()):
                results[index] = value
        return results

    def quantile(self, quantile: float) -> float:
        """Like :meth:`get_quantile_value` but raises on empty/invalid input."""
        if quantile < 0 or quantile > 1:
            raise IllegalArgumentError(f"quantile must be in [0, 1], got {quantile!r}")
        if self._count == 0:
            raise EmptySketchError("cannot query a quantile of an empty sketch")
        value = self.get_quantile_value(quantile)
        assert value is not None
        return value

    def get_rank_value(self, rank: float) -> Optional[float]:
        """Return the estimated value at an absolute ``rank`` in ``[0, count)``."""
        if self._count == 0 or rank < 0 or rank >= self._count:
            return None
        return self.get_quantile_value(rank / max(self._count - 1, 1))

    def quantile_bounds(self, quantile: float) -> Tuple[float, float]:
        """Cheap ``(lower, upper)`` bounds enclosing :meth:`quantile`'s estimate.

        Resolves only which *region* (negative store, zero bucket, positive
        store) the requested rank falls in — the same classification
        :meth:`get_quantiles` performs — and returns the representative values
        of that store's extreme keys, without walking any bucket counts.  The
        guarantee is ``lower <= self.quantile(q) <= upper``: every estimate
        the sketch can return for that rank is ``mapping.value(key)`` for a
        key between the store's ``min_key`` and ``max_key``, and the key
        mapping is monotone.  This holds for every store family, including
        the collapsing and adaptive-accuracy (UDDSketch) variants, because it
        bounds the *estimate*, not the underlying data.

        ``O(1)`` for dense stores and ``O(num_buckets)`` at worst for sparse
        ones — far cheaper than a rank scan, which makes it the pruning
        primitive for threshold queries ("which series have p99 > 500ms?"):
        if ``upper <= threshold`` the series cannot match, and if
        ``lower > threshold`` it must.

        Raises
        ------
        IllegalArgumentError
            If ``quantile`` is outside ``[0, 1]``.
        EmptySketchError
            If the sketch holds no data.
        """
        if quantile < 0 or quantile > 1:
            raise IllegalArgumentError(f"quantile must be in [0, 1], got {quantile!r}")
        if self._count == 0:
            raise EmptySketchError("cannot bound a quantile of an empty sketch")
        rank = max(quantile * (self._count - 1), 0.0)
        negative_count = self._negative_store.count
        zero_boundary = self._zero_count + negative_count
        if rank < negative_count:
            return (
                -self._mapping.value(self._negative_store.max_key),
                -self._mapping.value(self._negative_store.min_key),
            )
        if rank < zero_boundary:
            return (0.0, 0.0)
        return (
            self._mapping.value(self._store.min_key),
            self._mapping.value(self._store.max_key),
        )

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #

    def mergeable_with(self, other: "BaseDDSketch") -> bool:
        """Whether ``other`` uses compatible bucket boundaries."""
        return self._mapping == other._mapping

    def merge(self, other: "BaseDDSketch") -> None:
        """Fold ``other`` into this sketch (full mergeability, Algorithm 4).

        Because bucket boundaries are fixed by ``gamma`` and not by the data,
        merging is a per-key sum of counters and is associative and
        commutative: merging sketches in any order or shape of tree yields
        exactly the same result as sketching the concatenated stream.
        """
        if not isinstance(other, BaseDDSketch):
            raise IllegalArgumentError(f"cannot merge DDSketch with {type(other).__name__}")
        if not self.mergeable_with(other):
            raise UnequalSketchParametersError(
                "cannot merge sketches with different mappings: "
                f"{self._mapping!r} vs {other._mapping!r}"
            )
        if other.is_empty:
            return

        self._store.merge(other._store)
        self._negative_store.merge(other._negative_store)
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    def __iadd__(self, other: "BaseDDSketch") -> "BaseDDSketch":
        self.merge(other)
        return self

    def __add__(self, other: "BaseDDSketch") -> "BaseDDSketch":
        """Return a new sketch holding the merge of both operands.

        Neither operand is mutated.  The merge goes through :meth:`merge` on
        a copy of ``self``, so subclass semantics are preserved — in
        particular two :class:`~repro.core.UDDSketch` operands with different
        collapse counts fuse to the coarser guarantee, exactly as an explicit
        ``merge`` would.
        """
        if not isinstance(other, BaseDDSketch):
            return NotImplemented
        result = self.copy()
        result.merge(other)
        return result

    def copy(self) -> "BaseDDSketch":
        """Return a deep copy of this sketch."""
        new = type(self).__new__(type(self))
        BaseDDSketch.__init__(
            new,
            mapping=self._mapping,
            store=self._store.copy(),
            negative_store=self._negative_store.copy(),
            zero_count=self._zero_count,
        )
        new._min = self._min
        new._max = self._max
        new._count = self._count
        new._sum = self._sum
        return new

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly representation of the full sketch state."""
        return {
            "mapping": self._mapping.to_dict(),
            "store": self._store.to_dict(),
            "negative_store": self._negative_store.to_dict(),
            "zero_count": self._zero_count,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count > 0 else None,
            "max": self._max if self._count > 0 else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BaseDDSketch":
        """Rebuild a sketch from :meth:`to_dict` output.

        Raises :class:`~repro.exceptions.DeserializationError` for any
        malformed payload (missing sections, wrong types, non-finite
        summaries) instead of leaking ``KeyError``/``TypeError`` from the
        parsing internals.
        """
        from repro.exceptions import DeserializationError
        from repro.serialization.json_codec import store_from_dict

        from repro.core.uddsketch import UDDSketch
        from repro.store import UniformCollapsingDenseStore

        try:
            mapping_payload = payload["mapping"]
            if not isinstance(mapping_payload, dict):
                raise DeserializationError("the 'mapping' section must be an object")
            mapping = KeyMapping.from_dict(mapping_payload)
            store = store_from_dict(payload["store"])
            negative_store = store_from_dict(payload["negative_store"])
            uniform_stores = sum(
                isinstance(s, UniformCollapsingDenseStore)
                for s in (store, negative_store)
            )
            # Uniform-collapse stores fold their keys on overflow, which is
            # only sound when the owning sketch re-squares gamma in step —
            # i.e. when it is a UDDSketch with *both* stores uniform; and a
            # UDDSketch cannot drive the collapse bookkeeping of any other
            # store family.
            if uniform_stores and not issubclass(cls, UDDSketch):
                raise DeserializationError(
                    "payload carries uniform-collapse stores; decode it as a "
                    "UDDSketch (or let the default class auto-upgrade)"
                )
            if issubclass(cls, UDDSketch) and uniform_stores != 2:
                raise DeserializationError(
                    "a UDDSketch payload requires two uniform-collapse stores, "
                    f"got {type(store).__name__}/{type(negative_store).__name__}"
                )
            zero_count = float(payload.get("zero_count", 0.0))
            count = float(
                payload.get("count", store.count + negative_store.count + zero_count)
            )
            total = float(payload.get("sum", 0.0))
            if not math.isfinite(zero_count) or zero_count < 0.0:
                raise DeserializationError(f"invalid zero count {zero_count!r}")
            if not math.isfinite(count) or count < 0.0:
                raise DeserializationError(f"invalid total count {count!r}")
            if not math.isfinite(total):
                raise DeserializationError(f"invalid sum {total!r}")
            minimum = payload.get("min")
            maximum = payload.get("max")
            minimum = float("inf") if minimum is None else float(minimum)
            maximum = float("-inf") if maximum is None else float(maximum)
        except DeserializationError:
            raise
        except ReproError as error:
            raise DeserializationError(f"malformed sketch payload: {error}") from error
        except (KeyError, TypeError, ValueError, AttributeError, OverflowError) as error:
            raise DeserializationError(f"malformed sketch payload: {error}") from error

        sketch = cls.__new__(cls)
        BaseDDSketch.__init__(
            sketch,
            mapping=mapping,
            store=store,
            negative_store=negative_store,
            zero_count=zero_count,
        )
        sketch._count = count
        sketch._sum = total
        sketch._min = minimum
        sketch._max = maximum
        return sketch

    def to_bytes(self) -> bytes:
        """Serialize to the compact binary format (see :mod:`repro.serialization`)."""
        from repro.serialization.binary_codec import encode_sketch

        return encode_sketch(self)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BaseDDSketch":
        """Deserialize from the compact binary format."""
        from repro.serialization.binary_codec import decode_sketch

        return decode_sketch(payload, sketch_cls=cls)

    # ------------------------------------------------------------------ #
    # Dunder helpers
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self._count)

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(relative_accuracy={self.relative_accuracy!r}, "
            f"count={self._count!r}, num_buckets={self.num_buckets})"
        )


class DDSketch(BaseDDSketch):
    """The default DDSketch configuration.

    Uses the memory-optimal logarithmic mapping with bounded collapsing dense
    stores (lowest buckets collapse for positive values, highest for negative
    magnitudes), matching the configuration evaluated in the paper:
    ``alpha = 0.01`` and ``m = 2048`` buckets by default (Table 2).

    Examples
    --------
    >>> sketch = DDSketch(relative_accuracy=0.01)
    >>> for value in (1.0, 2.0, 3.0, 4.0, 5.0):
    ...     sketch.add(value)
    >>> round(sketch.get_quantile_value(0.5), 1)
    3.0
    """

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        bin_limit: int = DEFAULT_BIN_LIMIT,
        mapping: Optional[KeyMapping] = None,
    ) -> None:
        if mapping is None:
            mapping = LogarithmicMapping(relative_accuracy)
        elif mapping.relative_accuracy != relative_accuracy and relative_accuracy != DEFAULT_RELATIVE_ACCURACY:
            raise IllegalArgumentError(
                "pass either relative_accuracy or an explicit mapping, not conflicting values"
            )
        if bin_limit <= 0:
            raise IllegalArgumentError(f"bin_limit must be positive, got {bin_limit!r}")
        super().__init__(
            mapping=mapping,
            store=CollapsingLowestDenseStore(bin_limit=bin_limit),
            negative_store=CollapsingHighestDenseStore(bin_limit=bin_limit),
        )
        self._bin_limit = bin_limit

    @property
    def bin_limit(self) -> int:
        """Maximum number of buckets per store before collapsing begins."""
        return self._bin_limit

    def copy(self) -> "DDSketch":
        new = type(self)(
            relative_accuracy=self.relative_accuracy,
            bin_limit=self._bin_limit,
            mapping=self._mapping,
        )
        new._store = self._store.copy()
        new._negative_store = self._negative_store.copy()
        new._zero_count = self._zero_count
        new._min = self._min
        new._max = self._max
        new._count = self._count
        new._sum = self._sum
        return new
