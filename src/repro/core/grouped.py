"""Grouped ingestion facade: raw ``(series_id, value)`` columns into sketches.

The high-cardinality pipeline (see :mod:`repro.registry`) receives columnar
batches where each sample is labelled with an arbitrary hashable series
identifier.  :class:`GroupedIngest` owns the id-to-sketch dictionary and the
factorization step (turning the id column into dense group indices), then
hands the whole batch to :meth:`repro.core.BaseDDSketch.add_grouped_batch`,
which keys it with one :meth:`~repro.mapping.KeyMapping.key_batch` call per
sign and accumulates every series' buckets in one combined ``bincount`` when
the sketch family allows it.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ddsketch import BaseDDSketch, DDSketch
from repro.exceptions import EmptySketchError, IllegalArgumentError
from repro.store.grouped import GroupedScratch


class GroupedIngest:
    """Bulk ingestion of ``(series_id, value)`` columns into many sketches.

    Parameters
    ----------
    sketch_factory:
        Zero-argument callable creating the sketch for a series the first
        time it receives data; defaults to the paper's configuration
        (``DDSketch(relative_accuracy=0.01)``).

    Examples
    --------
    >>> import numpy as np
    >>> ingest = GroupedIngest()
    >>> ingest.ingest_columns(np.array(["a", "b", "a"]), np.array([1.0, 2.0, 3.0]))
    3
    >>> sorted(ingest.series_ids())
    ['a', 'b']
    >>> ingest.sketch("a").count
    2.0
    """

    def __init__(self, sketch_factory: Optional[Callable[[], BaseDDSketch]] = None) -> None:
        self._sketch_factory = sketch_factory or (lambda: DDSketch(relative_accuracy=0.01))
        self._sketches: Dict[Hashable, BaseDDSketch] = {}
        # One reusable flat-index scratch per facade: each registry (and each
        # shard of a ShardedRegistry) owns exactly one GroupedIngest, so the
        # single-writer discipline required by GroupedScratch holds.
        self._scratch = GroupedScratch()

    # ------------------------------------------------------------------ #
    # Series access
    # ------------------------------------------------------------------ #

    def sketch(self, series_id: Hashable) -> BaseDDSketch:
        """The sketch for ``series_id``, created on first use."""
        existing = self._sketches.get(series_id)
        if existing is None:
            existing = self._sketch_factory()
            self._sketches[series_id] = existing
        return existing

    def get(self, series_id: Hashable) -> BaseDDSketch:
        """The sketch for ``series_id``; raises for an unknown series."""
        existing = self._sketches.get(series_id)
        if existing is None:
            raise EmptySketchError(f"no data for series {series_id!r}")
        return existing

    def series_ids(self) -> List[Hashable]:
        """The ids of every series holding a sketch (insertion order)."""
        return list(self._sketches)

    @property
    def total_count(self) -> float:
        """Total inserted weight across every series."""
        return sum(sketch.count for sketch in self._sketches.values())

    def merge_sketch(
        self, series_id: Hashable, sketch: BaseDDSketch, copy: bool = True
    ) -> None:
        """Fold one sketch into a series (adopting it for a new series).

        A new series stores ``sketch`` itself when ``copy`` is false (useful
        when the caller hands over ownership, e.g. a decoded wire frame) and
        a copy otherwise; an existing series merges it in either way.
        """
        existing = self._sketches.get(series_id)
        if existing is None:
            self._sketches[series_id] = sketch.copy() if copy else sketch
        else:
            existing.merge(sketch)

    def clear(self) -> None:
        """Drop every series."""
        self._sketches = {}

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, series_id: Hashable) -> bool:
        return series_id in self._sketches

    def __iter__(self) -> Iterator[Tuple[Hashable, BaseDDSketch]]:
        return iter(self._sketches.items())

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def ingest_grouped(
        self,
        series_ids: Sequence[Hashable],
        group_indices: "np.ndarray",
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> int:
        """Ingest pre-factorized columns: ``values[i]`` goes to ``series_ids[group_indices[i]]``.

        The fast shape for producers that already hold dense group codes (a
        simulation, a parser emitting an id table).  Sketches are only
        created for groups that actually receive samples.  Returns the number
        of samples ingested.
        """
        group_indices = np.asarray(group_indices, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if group_indices.shape != values.shape:
            raise IllegalArgumentError(
                f"group_indices shape {group_indices.shape} does not match "
                f"values shape {values.shape}"
            )
        if group_indices.size == 0:
            return 0
        lowest = int(group_indices.min())
        highest = int(group_indices.max())
        num_listed = len(series_ids)
        if lowest < 0 or highest >= num_listed:
            raise IllegalArgumentError(
                f"group indices must be in [0, {num_listed}), got range "
                f"[{lowest}, {highest}]"
            )
        # Validate the batch BEFORE creating any sketch: a rejected batch
        # must not leave empty phantom series behind.  add_grouped_batch
        # re-validates the (now clean) arrays — a deliberate duplication,
        # since it is a public entry point of its own and the repeated
        # isfinite pass costs ~2% of this path.
        values, weights = BaseDDSketch._coerce_values_weights(values, weights)
        # Sketches are only created for groups that actually receive samples;
        # the presence scan and the dense re-coding are both O(n) array passes
        # (a lookup table beats a searchsorted remap by ~60x at 1M samples).
        occupancy = np.bincount(group_indices, minlength=num_listed)
        present = np.flatnonzero(occupancy)
        if present.size == num_listed:
            compact = group_indices
        else:
            recode = np.empty(num_listed, dtype=np.int64)
            recode[present] = np.arange(present.size)
            compact = recode[group_indices]
        sketches = [self.sketch(series_ids[position]) for position in present.tolist()]
        BaseDDSketch.add_grouped_batch(sketches, compact, values, weights, scratch=self._scratch)
        return int(group_indices.size)

    def ingest_columns(
        self,
        series_ids: Sequence[Hashable],
        values: "np.ndarray",
        weights: Optional[Union[float, "np.ndarray"]] = None,
    ) -> int:
        """Ingest raw parallel columns: ``values[i]`` goes to series ``series_ids[i]``.

        The id column is factorized once — vectorized via ``numpy.unique``
        when the ids form a non-object array (strings, integers), with a
        dictionary fallback for arbitrary hashables — and the batch then
        flows through :meth:`ingest_grouped`.  Returns the number of samples
        ingested.
        """
        uniques, codes = _factorize(series_ids)
        if not uniques:
            if np.asarray(values, dtype=np.float64).reshape(-1).size:
                raise IllegalArgumentError(
                    "series_ids is empty but values is not"
                )
            return 0
        return self.ingest_grouped(uniques, codes, values, weights)


def _factorize(series_ids: Sequence[Hashable]) -> Tuple[List[Hashable], "np.ndarray"]:
    """Turn an id column into ``(unique_ids, dense_codes)``.

    NumPy-native id columns (string or integer arrays) are factorized with
    one vectorized ``numpy.unique`` pass; anything else falls back to a
    dictionary scan.  Unique ids are returned as plain Python objects so they
    behave as ordinary dictionary keys.
    """
    array = np.asarray(series_ids)
    if array.ndim == 1 and array.dtype != object:
        uniques, codes = np.unique(array, return_inverse=True)
        return [unique.item() for unique in uniques], codes.astype(np.int64)
    positions: Dict[Hashable, int] = {}
    codes = np.empty(len(series_ids), dtype=np.int64)
    for index, series_id in enumerate(series_ids):
        position = positions.get(series_id)
        if position is None:
            position = len(positions)
            positions[series_id] = position
        codes[index] = position
    return list(positions), codes
