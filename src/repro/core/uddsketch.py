"""UDDSketch: DDSketch with uniform collapses and an adaptive accuracy.

The paper's bounded sketch (Algorithms 3 and 4) keeps memory constant by
collapsing the buckets of one tail, which abandons the relative-error
guarantee for the quantiles that land there.  UDDSketch (Epicoco, Melle,
Cafaro, Pulimeno, 2020) keeps the guarantee over the *entire* ``[0, 1]``
quantile range instead: when the bucket budget is exceeded, every pair of
adjacent buckets is folded together (``k -> ceil(k / 2)``), which is exactly
the sketch that would have been built with ``gamma**2`` from the start.  Each
collapse therefore trades accuracy uniformly —

    ``alpha' = 2 * alpha / (1 + alpha**2)``

— and the sketch always knows its *current* guarantee, exposed as
:attr:`UDDSketch.relative_accuracy` (the inherited property now reflects the
degraded mapping) next to the configured :attr:`initial_relative_accuracy`.

Merging follows the stream-fusion semantics of the follow-up work (Cafaro et
al., 2021): two UDDSketches whose mappings descend from the same initial
``gamma`` by different numbers of collapses are merged by first collapsing
the *finer* side until both use the same ``gamma``, so the result carries the
coarser input's guarantee.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.ddsketch import BaseDDSketch, DEFAULT_RELATIVE_ACCURACY
from repro.exceptions import IllegalArgumentError, UnequalSketchParametersError
from repro.mapping import KeyMapping, LogarithmicMapping
from repro.store import UniformCollapsingDenseStore

#: Default bucket budget per store.  Smaller than the tail-collapsing default
#: (2048) because a uniform collapse recovers half the budget in one pass, so
#: the steady-state cost of a tight budget is a coarser-but-valid guarantee
#: rather than a destroyed tail.
DEFAULT_UNIFORM_BIN_LIMIT = 512

#: Sanity cap on deserialized collapse counts.  The accuracy degradation
#: ``alpha' = 2 alpha / (1 + alpha**2)`` pushes alpha to within float
#: rounding of 1.0 after a few dozen collapses even from alpha = 1e-6, so no
#: genuine sketch ever gets near this; a larger wire value is a malformed
#: payload (and, unvalidated, would make the first post-decode mutation spin
#: through billions of catch-up collapse calls).
MAX_COLLAPSE_COUNT = 64


class UDDSketch(BaseDDSketch):
    """Quantile sketch with bounded memory and a uniformly-degrading guarantee.

    Parameters
    ----------
    relative_accuracy:
        The *initial* accuracy ``alpha``; the effective accuracy degrades as
        collapses happen and is always available as ``relative_accuracy``.
    bin_limit:
        Bucket budget per store; exceeding it triggers a uniform collapse.
    mapping:
        Optional explicit key mapping.  Must be the exact logarithmic mapping
        family for the fold-vs-``gamma**2`` correspondence to be exact; the
        default is :class:`~repro.mapping.LogarithmicMapping`.

    Examples
    --------
    >>> import numpy as np
    >>> sketch = UDDSketch(relative_accuracy=0.01, bin_limit=128)
    >>> sketch.add_batch(np.logspace(-3, 6, 100_000))  # doctest: +ELLIPSIS
    UDDSketch(...)
    >>> sketch.collapse_count >= 1
    True
    >>> sketch.relative_accuracy > sketch.initial_relative_accuracy
    True
    """

    # Class-level defaults so instances built via ``__new__`` by the codecs
    # are well-formed before the decoder restores the real values.
    _collapse_count: int = 0
    _initial_relative_accuracy: Optional[float] = None
    _bin_limit: int = DEFAULT_UNIFORM_BIN_LIMIT

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        bin_limit: int = DEFAULT_UNIFORM_BIN_LIMIT,
        mapping: Optional[KeyMapping] = None,
    ) -> None:
        if mapping is None:
            mapping = LogarithmicMapping(relative_accuracy)
        if mapping.offset != 0.0:
            # The store fold k -> ceil(k/2) matches the gamma**2 mapping only
            # for unshifted keys; an offset (a foreign-payload compatibility
            # shim) would drift off the folded grid after the first collapse.
            raise IllegalArgumentError(
                f"UDDSketch requires a mapping with offset 0, got {mapping.offset!r}"
            )
        if bin_limit < 2:
            raise IllegalArgumentError(
                f"bin_limit must be at least 2 to allow folding, got {bin_limit!r}"
            )
        super().__init__(
            mapping=mapping,
            store=UniformCollapsingDenseStore(bin_limit=bin_limit),
            negative_store=UniformCollapsingDenseStore(bin_limit=bin_limit),
        )
        self._bin_limit = int(bin_limit)
        self._initial_relative_accuracy = float(mapping.relative_accuracy)
        self._collapse_count = 0

    # ------------------------------------------------------------------ #
    # Accuracy bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def bin_limit(self) -> int:
        """Bucket budget per store before a uniform collapse is triggered."""
        return self._bin_limit

    @property
    def initial_relative_accuracy(self) -> float:
        """The accuracy the sketch was configured with, before any collapse."""
        if self._initial_relative_accuracy is None:
            return self._mapping.relative_accuracy
        return self._initial_relative_accuracy

    @property
    def collapse_count(self) -> int:
        """Number of uniform collapses (``gamma`` squarings) performed so far."""
        return self._collapse_count

    def _sync_collapses(self) -> None:
        """Bring both stores and the mapping to the same collapse count.

        A mutation can trigger a collapse in one store only; the sibling
        store must fold the same number of times (so both halves of the
        sketch share one key space) and the mapping must square its ``gamma``
        once per collapse so freshly inserted values land in the folded
        buckets.
        """
        self._collapse_to(
            max(self._store.collapse_count, self._negative_store.collapse_count)
        )

    def _collapse_to(self, target: int) -> None:
        """Coarsen stores and mapping until all have ``target`` collapses."""
        for store in (self._store, self._negative_store):
            while store.collapse_count < target:
                store.collapse()
        while self._collapse_count < target:
            self._mapping = self._mapping.with_doubled_gamma()
            self._collapse_count += 1

    def _mapping_after_collapses(self, extra: int) -> KeyMapping:
        """The mapping this sketch would use after ``extra`` more collapses."""
        mapping = self._mapping
        for _ in range(extra):
            mapping = mapping.with_doubled_gamma()
        return mapping

    # ------------------------------------------------------------------ #
    # Mutation (inherited behaviour + collapse synchronization)
    # ------------------------------------------------------------------ #

    def add(self, value: float, weight: float = 1.0) -> None:
        super().add(value, weight)
        self._sync_collapses()

    def add_batch(self, values, weights=None) -> "UDDSketch":
        super().add_batch(values, weights)
        self._sync_collapses()
        return self

    def delete(self, value: float, weight: float = 1.0) -> None:
        """Delete with immediate re-synchronization.

        Fully draining a store makes it ``clear()`` itself, which resets its
        collapse counter while the sketch's mapping stays coarsened.
        Re-syncing here — while the store is still empty, so the catch-up
        ``collapse()`` calls bump its counter without folding anything —
        prevents a later insertion from being folded twice.
        """
        super().delete(value, weight)
        self._sync_collapses()

    def merge(self, other: BaseDDSketch) -> None:
        """Merge with mismatched-``alpha`` fusion semantics.

        Another :class:`UDDSketch` descending from the same initial mapping
        is merged by first collapsing the *finer* side (fewer collapses)
        until both sketches share one ``gamma``; the merged sketch carries
        the coarser guarantee.  ``other`` is never mutated — when it is the
        finer side, a coarsened copy is merged instead.  Any other sketch is
        merged under the usual equal-mapping rule of the base class.

        Lineage compatibility is validated *before* anything is coarsened:
        a rejected merge must not leave this sketch with a needlessly
        degraded guarantee.
        """
        if isinstance(other, UDDSketch) and other._collapse_count != self._collapse_count:
            if other._collapse_count > self._collapse_count:
                diff = other._collapse_count - self._collapse_count
                if self._mapping_after_collapses(diff) != other._mapping:
                    raise UnequalSketchParametersError(
                        "cannot merge UDDSketches from different lineages: "
                        f"{self._mapping!r} (+{diff} collapses) vs {other._mapping!r}"
                    )
                self._collapse_to(other._collapse_count)
            else:
                diff = self._collapse_count - other._collapse_count
                if other._mapping_after_collapses(diff) != self._mapping:
                    raise UnequalSketchParametersError(
                        "cannot merge UDDSketches from different lineages: "
                        f"{other._mapping!r} (+{diff} collapses) vs {self._mapping!r}"
                    )
                other = other.copy()
                other._collapse_to(self._collapse_count)
        super().merge(other)
        self._sync_collapses()

    def copy(self) -> "UDDSketch":
        new = type(self).__new__(type(self))
        BaseDDSketch.__init__(
            new,
            mapping=self._mapping,
            store=self._store.copy(),
            negative_store=self._negative_store.copy(),
            zero_count=self._zero_count,
        )
        new._min = self._min
        new._max = self._max
        new._count = self._count
        new._sum = self._sum
        new._bin_limit = self._bin_limit
        new._collapse_count = self._collapse_count
        new._initial_relative_accuracy = self._initial_relative_accuracy
        return new

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        payload = super().to_dict()
        payload["initial_relative_accuracy"] = self.initial_relative_accuracy
        payload["collapse_count"] = self._collapse_count
        payload["bin_limit"] = self._bin_limit
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "UDDSketch":
        from repro.exceptions import DeserializationError

        sketch = super().from_dict(payload)  # validates the store pairing
        assert isinstance(sketch, UDDSketch)
        if sketch._mapping.offset != 0.0:
            raise DeserializationError(
                f"a UDDSketch mapping must have offset 0, got {sketch._mapping.offset!r}"
            )
        try:
            collapse_count = int(payload.get("collapse_count", 0))
            initial = payload.get("initial_relative_accuracy")
            initial_accuracy = (
                float(initial) if initial is not None else sketch._mapping.relative_accuracy
            )
            bin_limit = int(payload.get("bin_limit", sketch._store.bin_limit))
        except (TypeError, ValueError) as error:
            raise DeserializationError(f"malformed sketch payload: {error}") from error
        if not 0 <= collapse_count <= MAX_COLLAPSE_COUNT:
            raise DeserializationError(
                f"collapse count {collapse_count} outside [0, {MAX_COLLAPSE_COUNT}]"
            )
        if not 0.0 < initial_accuracy < 1.0:
            raise DeserializationError(
                f"initial relative accuracy {initial_accuracy!r} is not in (0, 1)"
            )
        sketch._collapse_count = collapse_count
        sketch._initial_relative_accuracy = initial_accuracy
        sketch._bin_limit = bin_limit
        return sketch

    # ------------------------------------------------------------------ #
    # Representation
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}("
            f"initial_relative_accuracy={self.initial_relative_accuracy!r}, "
            f"current_relative_accuracy={self.relative_accuracy!r}, "
            f"collapse_count={self._collapse_count}, "
            f"count={self._count!r}, num_buckets={self.num_buckets})"
        )
