"""Ready-to-use DDSketch configurations.

The paper's Section 2.2 and Section 4 describe several implementation
strategies; each preset below corresponds to one of them so that experiments
can name the exact variant they exercise:

================================         ===========================================
preset                                   paper configuration
================================         ===========================================
:class:`LogCollapsingLowestDenseDDSketch`  "DDSketch" — log mapping, bounded dense store
:class:`FastDDSketch`                      "DDSketch (fast)" — interpolated mapping
:class:`LogUnboundedDenseDDSketch`         basic sketch of Section 2.1, no bucket limit
:class:`SparseDDSketch`                    sparse buckets + the exact Algorithm 3 collapse
:class:`LogCollapsingHighestDenseDDSketch` collapse from the highest buckets instead
:class:`PaperDDSketch`                     alias of the Table 2 configuration
:class:`UniformCollapsingDDSketch`         UDDSketch: uniform collapse, adaptive alpha
================================         ===========================================
"""

from __future__ import annotations

from typing import Optional

from repro.core.ddsketch import (
    BaseDDSketch,
    DDSketch,
    DEFAULT_BIN_LIMIT,
    DEFAULT_RELATIVE_ACCURACY,
)
from repro.core.uddsketch import UDDSketch
from repro.exceptions import IllegalArgumentError
from repro.mapping import (
    CubicallyInterpolatedMapping,
    KeyMapping,
    LogarithmicMapping,
)
from repro.store import (
    CollapsingHighestDenseStore,
    CollapsingLowestDenseStore,
    DenseStore,
    SparseStore,
)


class LogCollapsingLowestDenseDDSketch(BaseDDSketch):
    """Log mapping with bounded dense stores collapsing the lowest buckets.

    This is the configuration called simply "DDSketch" in the paper's
    evaluation: memory-optimal buckets, a hard limit on the number of tracked
    buckets, and accuracy preserved for the upper quantiles when the limit is
    reached (Proposition 4).
    """

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        bin_limit: int = DEFAULT_BIN_LIMIT,
    ) -> None:
        mapping = LogarithmicMapping(relative_accuracy)
        super().__init__(
            mapping=mapping,
            store=CollapsingLowestDenseStore(bin_limit=bin_limit),
            negative_store=CollapsingHighestDenseStore(bin_limit=bin_limit),
        )
        self._bin_limit = int(bin_limit)

    @property
    def bin_limit(self) -> int:
        """Maximum number of buckets per store before collapsing begins."""
        return self._bin_limit


class LogCollapsingHighestDenseDDSketch(BaseDDSketch):
    """Log mapping with bounded dense stores collapsing the *highest* buckets.

    Useful when the lower quantiles are the ones that matter (e.g. tracking
    free disk space); the collapse direction mirrors the default sketch.
    """

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        bin_limit: int = DEFAULT_BIN_LIMIT,
    ) -> None:
        mapping = LogarithmicMapping(relative_accuracy)
        super().__init__(
            mapping=mapping,
            store=CollapsingHighestDenseStore(bin_limit=bin_limit),
            negative_store=CollapsingLowestDenseStore(bin_limit=bin_limit),
        )
        self._bin_limit = int(bin_limit)

    @property
    def bin_limit(self) -> int:
        """Maximum number of buckets per store before collapsing begins."""
        return self._bin_limit


class LogUnboundedDenseDDSketch(BaseDDSketch):
    """The basic sketch of Section 2.1: log mapping, no bucket limit.

    Size can grow linearly with the number of distinct orders of magnitude in
    the data (worst case ``n``), but no collapse ever happens, so every
    quantile query is alpha-accurate regardless of the data distribution.
    """

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY) -> None:
        mapping = LogarithmicMapping(relative_accuracy)
        super().__init__(
            mapping=mapping,
            store=DenseStore(),
            negative_store=DenseStore(),
        )


class FastDDSketch(BaseDDSketch):
    """"DDSketch (fast)": interpolated mapping that avoids logarithms.

    Uses the cubically-interpolated mapping by default, which computes bucket
    keys from the binary representation of the float (no ``log`` call) at the
    cost of roughly 1% more buckets; pass a different
    :class:`~repro.mapping.KeyMapping` to use the linear or quadratic variant
    (up to ~44% more buckets, even faster indexing).
    """

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        bin_limit: int = DEFAULT_BIN_LIMIT,
        mapping: Optional[KeyMapping] = None,
    ) -> None:
        if mapping is None:
            mapping = CubicallyInterpolatedMapping(relative_accuracy)
        super().__init__(
            mapping=mapping,
            store=CollapsingLowestDenseStore(bin_limit=bin_limit),
            negative_store=CollapsingHighestDenseStore(bin_limit=bin_limit),
        )
        self._bin_limit = int(bin_limit)

    @property
    def bin_limit(self) -> int:
        """Maximum number of buckets per store before collapsing begins."""
        return self._bin_limit


class SparseDDSketch(BaseDDSketch):
    """Sparse-store sketch with the paper's exact collapse rule (Algorithm 3).

    Buckets live in a dictionary so memory is proportional to the number of
    *non-empty* buckets.  When ``max_num_buckets`` is set and an insertion
    pushes the positive store past the limit, the lowest non-empty bucket is
    folded into the next lowest — exactly the collapse step of Algorithms 3
    and 4 — rather than the windowed collapse used by the dense stores.
    """

    # Class-level default so instances built via ``__new__`` (generic
    # ``copy()``, the codecs) are well-formed before the real value lands.
    _max_num_buckets: Optional[int] = None

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_num_buckets: Optional[int] = None,
    ) -> None:
        if max_num_buckets is not None and max_num_buckets < 2:
            raise IllegalArgumentError(
                f"max_num_buckets must be at least 2, got {max_num_buckets!r}"
            )
        mapping = LogarithmicMapping(relative_accuracy)
        super().__init__(
            mapping=mapping,
            store=SparseStore(),
            negative_store=SparseStore(),
        )
        self._max_num_buckets = max_num_buckets

    @property
    def max_num_buckets(self) -> Optional[int]:
        """Maximum number of non-empty buckets kept per store (None = unbounded)."""
        return self._max_num_buckets

    def add(self, value: float, weight: float = 1.0) -> None:
        super().add(value, weight)
        self._enforce_limit()

    def add_batch(self, value_array, weights=None) -> "SparseDDSketch":
        """Vectorized insertion followed by one collapse pass.

        The per-item path collapses after every insertion; collapsing the
        lowest bucket into the next lowest is order-independent (the weight
        of every discarded key ends up in the smallest surviving key), so
        collapsing once after the whole batch yields the same buckets.
        """
        super().add_batch(value_array, weights)
        self._enforce_limit()
        return self

    def merge(self, other: BaseDDSketch) -> None:
        super().merge(other)
        self._enforce_limit()

    def copy(self) -> "SparseDDSketch":
        new = super().copy()
        assert isinstance(new, SparseDDSketch)
        new._max_num_buckets = self._max_num_buckets
        return new

    def _enforce_limit(self) -> None:
        if self._max_num_buckets is None:
            return
        store = self._store
        negative_store = self._negative_store
        assert isinstance(store, SparseStore)
        assert isinstance(negative_store, SparseStore)
        while store.num_buckets > self._max_num_buckets:
            store.collapse_lowest()
        while negative_store.num_buckets > self._max_num_buckets:
            negative_store.collapse_highest()


#: Alias for the exact configuration used throughout the paper's experiments
#: (Table 2): relative accuracy 1% and at most 2048 buckets.
PaperDDSketch = DDSketch

#: Alias naming the uniform-collapse variant in the preset family: bounded
#: memory with a guarantee that degrades uniformly (UDDSketch) instead of
#: abandoning one tail (the Algorithm 3/4 collapse of the presets above).
UniformCollapsingDDSketch = UDDSketch
