"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class IllegalArgumentError(ReproError, ValueError):
    """An argument is outside the domain accepted by the callee.

    Raised, for instance, when a relative accuracy is not in ``(0, 1)``, when a
    quantile is not in ``[0, 1]``, or when a negative weight is supplied.
    """


class UnequalSketchParametersError(ReproError, ValueError):
    """Two sketches with incompatible parameters were combined.

    DDSketch instances can only be merged when they use the same ``gamma``
    (equivalently, the same relative accuracy and index offset); merging two
    sketches with different bucket boundaries would silently destroy the
    relative-error guarantee, so the library refuses to do it.
    """


class EmptySketchError(ReproError, ValueError):
    """A value query (quantile, min, max, average) was made on an empty sketch."""


class UnsupportedOperationError(ReproError, RuntimeError):
    """The requested operation is not supported by this sketch variant.

    For example, the bounded-range HDR Histogram baseline cannot record values
    outside its configured range, and the Moments sketch cannot delete values.
    """


class DeserializationError(ReproError, ValueError):
    """A serialized sketch payload could not be decoded."""


class ServiceError(ReproError, RuntimeError):
    """A request to the aggregation service failed at the transport layer.

    Raised by :class:`~repro.service.ServiceClient` when a request cannot be
    completed after its retries (connection refused, timeout, garbled reply
    stream) or when the server rejects it for a reason that does not map to
    a more precise library exception.  Application-level rejections keep
    their own types: a query for an unknown metric still raises
    :class:`EmptySketchError`, a corrupt payload still raises
    :class:`DeserializationError`.
    """


class ServiceOverloadedError(ServiceError):
    """The server shed the request at its admission gate.

    The server was healthy but at capacity (too many in-flight durable
    pushes or too many open connections) and refused the request instead of
    queueing it unboundedly.  :attr:`retry_after` carries the server's hint,
    in seconds, for when a retry is worth attempting; the retrying
    :class:`~repro.service.ServiceClient` honors it automatically.  Load
    shedding is not a transport failure: it never trips the client's
    circuit breaker.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Server-suggested delay in seconds before retrying.
        self.retry_after = max(0.0, float(retry_after))


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open: the request failed fast.

    After ``breaker_threshold`` consecutive transport failures the
    :class:`~repro.service.ServiceClient` stops dialing the server for a
    cooldown period so a fleet of agents does not hammer a struggling
    server with connection storms.  Calls made while the breaker is open
    raise this error immediately (no socket I/O); after the cooldown a
    half-open probe (one ``ping``) decides whether to close the breaker.
    Callers holding data should treat this exactly like
    :class:`ServiceError` — e.g. divert frames to a
    :class:`~repro.service.FrameSpool`.
    """
