"""Command-line interface for the DDSketch reproduction.

Four subcommands cover the common workflows:

``sketch``
    Read one number per line (stdin or a file), build a DDSketch and print the
    requested quantiles along with exact count/min/max/average.  Values are
    ingested in NumPy batches (``--batch-size``, default 8192) through the
    vectorized ``add_batch`` path; ``--batch-size 1`` forces the per-value
    scalar path.  ``--variant uddsketch`` selects the uniform-collapse sketch
    (bounded memory with an adaptive ``alpha``); its report additionally
    prints the *effective* accuracy after any collapses.

``generate``
    Emit values from one of the evaluation data sets (pareto / span / power),
    one per line — handy for piping into ``sketch`` or external tools.

``evaluate``
    Run the Figure 10/11-style accuracy comparison for one data set and print
    the per-sketch relative and rank errors.

``bounds``
    Evaluate the Section 3 sketch-size bounds for a given stream size.

``serve``
    Run the cross-process aggregation server: accepts frame-v3 pushes over a
    length-prefixed socket protocol, persists every accepted frame to a
    crash-recoverable segment log under ``--data-dir``, and replays to a
    bit-exact state on restart.  Overload posture is tunable:
    ``--max-inflight`` / ``--max-connections`` bound the admission gate,
    ``--idle-timeout`` reaps stalled connections, ``--drain-timeout`` bounds
    the graceful shutdown, and ``--max-message-bytes`` rejects hostile
    length prefixes before any allocation.

``push``
    Read one number per line, sketch the values, and push the resulting
    frame to a running ``serve`` instance — the smallest possible agent.
    ``--retries`` / ``--deadline`` bound the attempt budget, and with
    ``--spool-dir`` a push that still fails is parked in a durable
    :class:`~repro.service.FrameSpool` (and replayed on the next run).

``load-gen``
    Run the agent-fleet load generator against a freshly started in-process
    server and write the measured end-to-end frames/sec and values/sec to
    ``BENCH_service.json`` (shared benchmark-artifact schema).  With
    ``--overload``, run the graceful-degradation benchmark instead — fleet
    at 1x and 2x admission capacity plus an outage-spool replay — and write
    ``BENCH_overload.json``.

``version``
    Print the package version plus the ingest-kernel diagnostics: which
    kernel backend (``numpy`` or the compiled ``native`` one) is active,
    whether the native backend is available on this host (and, if not,
    why), and the ``REPRO_KERNEL`` override in effect — the first thing
    to check when comparing benchmark numbers from two machines.

``simulate``
    Run the Section 1 monitoring fleet end to end — agents sketching skewed
    latencies, multi-sketch wire frames, a tag-aware aggregator — and print
    the distributed quantiles next to the exact ones.
    ``--series-cardinality N`` fans the metric out into ``N`` tagged
    endpoint series ingested through the grouped registry pipeline (flushed
    as multi-sketch wire frames, frame v3); the report then includes a
    tag-filtered per-endpoint p99 sample.  ``--shards N`` (with optional
    ``--workers K``) runs every agent on the sharded concurrent registry:
    per-shard ingest queues, a thread-pool flush, and one frame per shard
    on the wire.

Run ``python -m repro --help`` for details.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.ddsketch import DDSketch
from repro.core.uddsketch import UDDSketch
from repro.datasets.registry import dataset_names, get_dataset
from repro.evaluation.accuracy import measure_accuracy
from repro.evaluation.report import format_quantile_errors, format_table
from repro.exceptions import ReproError
from repro.theory.bounds import exponential_size_bound, pareto_size_bound


def _parse_quantiles(raw: str) -> List[float]:
    quantiles = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        quantile = float(part)
        if not 0 <= quantile <= 1:
            raise argparse.ArgumentTypeError(f"quantile {quantile} is not in [0, 1]")
        quantiles.append(quantile)
    if not quantiles:
        raise argparse.ArgumentTypeError("at least one quantile is required")
    return quantiles


def _parse_batch_size(raw: str) -> int:
    batch_size = int(raw)
    if batch_size < 1:
        raise argparse.ArgumentTypeError(f"batch size must be at least 1, got {batch_size}")
    return batch_size


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DDSketch reproduction: sketch streams, generate data sets, run experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sketch = subparsers.add_parser("sketch", help="sketch numbers from a file or stdin")
    sketch.add_argument("input", nargs="?", default="-", help="input file (default: stdin)")
    sketch.add_argument(
        "--relative-accuracy", type=float, default=0.01, help="alpha (default: 0.01)"
    )
    sketch.add_argument("--bin-limit", type=int, default=2048, help="bucket limit m (default: 2048)")
    sketch.add_argument(
        "--variant",
        choices=("ddsketch", "uddsketch"),
        default="ddsketch",
        help=(
            "sketch variant: 'ddsketch' collapses the lowest buckets when the limit "
            "is hit (paper Algorithm 3/4), 'uddsketch' collapses uniformly and "
            "degrades alpha instead (default: ddsketch)"
        ),
    )
    sketch.add_argument(
        "--batch-size",
        type=_parse_batch_size,
        default=8192,
        help="values per vectorized ingestion batch; 1 disables batching (default: 8192)",
    )
    sketch.add_argument(
        "--quantiles",
        type=_parse_quantiles,
        default=[0.5, 0.75, 0.9, 0.95, 0.99],
        help="comma-separated quantiles (default: 0.5,0.75,0.9,0.95,0.99)",
    )

    generate = subparsers.add_parser("generate", help="emit values from an evaluation data set")
    generate.add_argument("dataset", choices=list(dataset_names()))
    generate.add_argument("--size", type=int, default=10_000, help="number of values (default: 10000)")
    generate.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")

    evaluate = subparsers.add_parser("evaluate", help="accuracy comparison on one data set")
    evaluate.add_argument("dataset", choices=list(dataset_names()))
    evaluate.add_argument("--size", type=int, default=20_000, help="stream size (default: 20000)")
    evaluate.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    evaluate.add_argument(
        "--quantiles", type=_parse_quantiles, default=[0.5, 0.95, 0.99], help="quantiles to evaluate"
    )

    subparsers.add_parser(
        "version",
        help="print the package version and the active ingest-kernel backend",
    )

    bounds = subparsers.add_parser("bounds", help="evaluate the Section 3 size bounds")
    bounds.add_argument("--size", type=int, default=1_000_000, help="stream size n (default: 1e6)")
    bounds.add_argument(
        "--relative-accuracy", type=float, default=0.01, help="alpha (default: 0.01)"
    )

    simulate = subparsers.add_parser(
        "simulate", help="run the Section 1 monitoring fleet end to end"
    )
    simulate.add_argument("--hosts", type=int, default=8, help="fleet size (default: 8)")
    simulate.add_argument(
        "--intervals", type=int, default=12, help="flush intervals to simulate (default: 12)"
    )
    simulate.add_argument(
        "--requests-per-interval",
        type=int,
        default=5000,
        help="requests handled by the fleet per interval (default: 5000)",
    )
    simulate.add_argument(
        "--series-cardinality",
        type=int,
        default=1,
        help=(
            "number of tagged endpoint series the metric fans out into; "
            "values > 1 exercise the grouped registry ingestion and the "
            "multi-sketch wire frames (frame v3, version byte 0x03; "
            "default: 1)"
        ),
    )
    simulate.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "ingestion shards per agent; values > 1 run the sharded "
            "concurrent registry (per-shard ingest queues, thread-pool "
            "flush, one frame-v3 payload per shard on the wire; default: 1)"
        ),
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "flush worker threads per agent in sharded mode "
            "(default: one per shard, capped at the CPU count)"
        ),
    )
    simulate.add_argument(
        "--relative-accuracy", type=float, default=0.01, help="alpha (default: 0.01)"
    )
    simulate.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    simulate.add_argument(
        "--quantiles",
        type=_parse_quantiles,
        default=[0.5, 0.75, 0.9, 0.95, 0.99],
        help="comma-separated quantiles (default: 0.5,0.75,0.9,0.95,0.99)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the aggregation server (frame v3 over sockets, segment-log durability)",
    )
    serve.add_argument(
        "--data-dir",
        default=None,
        help=(
            "segment-log directory; accepted frames are persisted here and "
            "replayed to a bit-exact state on restart (default: in-memory only)"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0, help="listen port; 0 picks a free one")
    serve.add_argument(
        "--segment-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="segment rotation threshold in bytes (default: 4 MiB)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=256,
        help="write a compacted snapshot every N accepted frames; 0 disables (default: 256)",
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=64,
        help="flush-interval buckets retained for windowed queries (default: 64)",
    )
    serve.add_argument(
        "--interval-length",
        type=float,
        default=1.0,
        help="length of one retention bucket in seconds (default: 1.0)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every accepted frame (survive OS crashes, not just process crashes)",
    )
    serve.add_argument(
        "--max-frames",
        type=int,
        default=0,
        help="exit after accepting N frames (0 = serve until interrupted; used by tests)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission gate: concurrent pushes beyond this are shed with OVERLOADED (default: 64)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=256,
        help="connections beyond this get one OVERLOADED reply and are closed (default: 256)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        help="seconds a connection may sit without a complete message before it is reaped (default: 300)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds a graceful shutdown waits for in-flight requests (default: 5)",
    )
    serve.add_argument(
        "--max-message-bytes",
        type=int,
        default=64 * 1024 * 1024,
        help="reject inbound messages whose length prefix exceeds this (default: 64 MiB)",
    )

    push = subparsers.add_parser(
        "push", help="sketch numbers from a file or stdin and push one frame to a server"
    )
    push.add_argument("input", nargs="?", default="-", help="input file (default: stdin)")
    push.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    push.add_argument("--port", type=int, required=True, help="server port")
    push.add_argument("--metric", default="cli.values", help="metric name (default: cli.values)")
    push.add_argument(
        "--tag",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="tag the pushed series (repeatable)",
    )
    push.add_argument(
        "--agent-host",
        default="repro-push",
        help="producer identity used for deduplication (default: repro-push)",
    )
    push.add_argument(
        "--interval-start",
        type=float,
        default=0.0,
        help="interval timestamp carried by the pushed frame (default: 0.0)",
    )
    push.add_argument(
        "--relative-accuracy", type=float, default=0.01, help="alpha (default: 0.01)"
    )
    push.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retransmissions after a transport failure or OVERLOADED reply (default: 2)",
    )
    push.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="overall per-call budget in seconds across all retries (default: none)",
    )
    push.add_argument(
        "--spool-dir",
        default=None,
        help=(
            "durable spool directory: a push that fails after its retries is "
            "parked here (and previously spooled frames are replayed first)"
        ),
    )
    push.add_argument(
        "--compress",
        choices=("none", "zlib", "zstd"),
        default="none",
        help=(
            "compress the frame before pushing (zstd needs the optional "
            "zstandard module; the server decodes either form)"
        ),
    )

    query = subparsers.add_parser(
        "query",
        help="interactive quantile / threshold queries against a running server",
    )
    query.add_argument("--host", default="127.0.0.1", help="server address (default: 127.0.0.1)")
    query.add_argument("--port", type=int, required=True, help="server port")
    query.add_argument("--metric", required=True, help="metric to query")
    query.add_argument(
        "--quantiles",
        default="0.5,0.95,0.99",
        help="comma-separated quantiles (default: 0.5,0.95,0.99)",
    )
    query.add_argument(
        "--tag-filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="merge only series carrying this tag (repeatable)",
    )
    query.add_argument(
        "--window-start", type=float, default=None, help="window start timestamp (inclusive)"
    )
    query.add_argument(
        "--window-end", type=float, default=None, help="window end timestamp (exclusive)"
    )
    query.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "run a threshold query instead: list the series whose quantile "
            "estimate passes this value (uses the first entry of --quantiles)"
        ),
    )
    query.add_argument(
        "--below",
        action="store_true",
        help="with --threshold: match series strictly below instead of above",
    )

    load_gen = subparsers.add_parser(
        "load-gen",
        help="simulated agent fleet vs a real in-process server; writes BENCH_service.json",
    )
    load_gen.add_argument("--agents", type=int, default=100, help="fleet size (default: 100)")
    load_gen.add_argument(
        "--series", type=int, default=20, help="tagged series per agent (default: 20)"
    )
    load_gen.add_argument(
        "--intervals", type=int, default=4, help="flush intervals per agent (default: 4)"
    )
    load_gen.add_argument(
        "--values",
        type=int,
        default=2000,
        help="values per agent per interval (default: 2000)",
    )
    load_gen.add_argument(
        "--push-threads", type=int, default=4, help="concurrent client connections (default: 4)"
    )
    load_gen.add_argument(
        "--no-durability",
        action="store_true",
        help="skip the segment log (measures the pure in-memory ingest path)",
    )
    load_gen.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    load_gen.add_argument(
        "--overload",
        action="store_true",
        help=(
            "run the graceful-degradation benchmark instead: fleet at 1x and 2x "
            "admission capacity plus an outage-spool replay phase "
            "(writes BENCH_overload.json)"
        ),
    )
    load_gen.add_argument(
        "--output",
        default=None,
        help="benchmark artifact path (default: BENCH_service.json, or BENCH_overload.json with --overload)",
    )

    return parser


def _read_values(source: str, stdin=None) -> Iterable[float]:
    stream = stdin if source == "-" else open(source, "r", encoding="utf-8")
    try:
        for line in stream:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield float(line)
    finally:
        if source != "-":
            stream.close()


def _run_sketch(args: argparse.Namespace, stdin, stdout) -> int:
    if args.variant == "uddsketch":
        sketch = UDDSketch(relative_accuracy=args.relative_accuracy, bin_limit=args.bin_limit)
    else:
        sketch = DDSketch(relative_accuracy=args.relative_accuracy, bin_limit=args.bin_limit)
    if args.batch_size > 1:
        buffer: List[float] = []
        for value in _read_values(args.input, stdin):
            buffer.append(value)
            if len(buffer) >= args.batch_size:
                sketch.add_batch(np.asarray(buffer))
                buffer.clear()
        if buffer:
            sketch.add_batch(np.asarray(buffer))
    else:
        for value in _read_values(args.input, stdin):
            sketch.add(value)
    if sketch.is_empty:
        print("no values read", file=stdout)
        return 1
    rows = [
        ["count", f"{int(sketch.count)}"],
        ["min", f"{sketch.min:.6g}"],
        ["max", f"{sketch.max:.6g}"],
        ["average", f"{sketch.avg:.6g}"],
        ["buckets", f"{sketch.num_buckets}"],
        ["bytes", f"{sketch.size_in_bytes()}"],
    ]
    if args.variant == "uddsketch":
        # The guarantee is adaptive: report what it degraded to (and how many
        # uniform collapses got it there) next to the configured target.
        rows.append(["alpha (configured)", f"{sketch.initial_relative_accuracy:.6g}"])
        rows.append(["alpha (effective)", f"{sketch.relative_accuracy:.6g}"])
        rows.append(["collapses", f"{sketch.collapse_count}"])
    for quantile in args.quantiles:
        rows.append([f"p{quantile * 100:g}", f"{sketch.get_quantile_value(quantile):.6g}"])
    print(format_table(["statistic", "value"], rows), file=stdout)
    return 0


def _run_generate(args: argparse.Namespace, stdout) -> int:
    spec = get_dataset(args.dataset)
    for value in spec.generator(args.size, args.seed):
        print(f"{float(value):.9g}", file=stdout)
    return 0


def _run_evaluate(args: argparse.Namespace, stdout) -> int:
    measurement = measure_accuracy(
        args.dataset, args.size, quantiles=tuple(args.quantiles), seed=args.seed
    )
    print(f"dataset: {args.dataset}   n = {args.size}", file=stdout)
    print("", file=stdout)
    print("relative error:", file=stdout)
    print(format_quantile_errors(measurement.relative_errors, "sketch"), file=stdout)
    print("", file=stdout)
    print("rank error:", file=stdout)
    print(format_quantile_errors(measurement.rank_errors, "sketch"), file=stdout)
    return 0


def _run_bounds(args: argparse.Namespace, stdout) -> int:
    rows = [
        [
            "exponential(1)",
            f"{exponential_size_bound(args.size, alpha=args.relative_accuracy):.0f}",
        ],
        ["pareto(1, 1)", f"{pareto_size_bound(args.size, alpha=args.relative_accuracy):.0f}"],
    ]
    print(
        f"Theorem 9 bucket bounds for n = {args.size}, alpha = {args.relative_accuracy}",
        file=stdout,
    )
    print(format_table(["distribution", "bucket bound"], rows), file=stdout)
    return 0


def _run_version(stdout) -> int:
    import platform

    import repro
    from repro import kernel

    info = kernel.backend_info()
    rows = [
        ["repro", repro.__version__],
        ["python", platform.python_version()],
        ["numpy", np.__version__],
        ["kernel backend", info["active"]],
        ["native available", "yes" if info["native_available"] else "no"],
    ]
    if not info["native_available"]:
        rows.append(["native unavailable", str(info["native_unavailable_reason"])])
    rows.append(["REPRO_KERNEL", info["env"] if info["env"] is not None else "(unset)"])
    from repro.serialization.frame import frame_compressions

    rows.append(["frame compression", ",".join(frame_compressions())])
    print(format_table(["component", "value"], rows), file=stdout)
    return 0


def _run_simulate(args: argparse.Namespace, stdout) -> int:
    from repro.monitoring import MonitoringSimulation

    simulation = MonitoringSimulation(
        num_hosts=args.hosts,
        requests_per_interval=args.requests_per_interval,
        num_intervals=args.intervals,
        relative_accuracy=args.relative_accuracy,
        seed=args.seed,
        series_cardinality=args.series_cardinality,
        shards=args.shards,
        flush_workers=args.workers,
    )
    simulation.run()
    report = simulation.report(quantiles=tuple(args.quantiles))
    print(
        f"metric: {report.metric}   hosts = {report.num_hosts}   "
        f"intervals = {report.num_intervals}   series = {report.num_series}"
        + (f"   shards = {report.shards}" if report.shards > 1 else ""),
        file=stdout,
    )
    rows = [
        ["requests", f"{report.total_requests}"],
        ["bytes on wire", f"{report.bytes_on_wire}"],
        ["max relative error", f"{report.max_relative_error():.6g}"],
        ["kernel backend", report.kernel_backend],
    ]
    print(format_table(["statistic", "value"], rows), file=stdout)
    print("", file=stdout)
    quantile_rows = [
        [
            f"p{quantile * 100:g}",
            f"{report.overall_quantiles[quantile]:.6g}",
            f"{report.exact_quantiles[quantile]:.6g}",
        ]
        for quantile in args.quantiles
    ]
    print(format_table(["quantile", "distributed", "exact"], quantile_rows), file=stdout)
    if report.endpoint_p99:
        print("", file=stdout)
        print("tag-filtered p99 per endpoint (first 5):", file=stdout)
        endpoint_rows = [
            [endpoint, f"{value:.6g}"]
            for endpoint, value in sorted(report.endpoint_p99.items())[:5]
        ]
        print(format_table(["endpoint", "p99"], endpoint_rows), file=stdout)
    return 0


def _run_serve(args: argparse.Namespace, stdout) -> int:
    import asyncio

    from repro.service import AggregationServer

    async def _serve() -> None:
        server = AggregationServer(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            interval_length=args.interval_length,
            retention_intervals=args.retention,
            max_segment_bytes=args.segment_bytes,
            snapshot_every=args.snapshot_every,
            fsync=args.fsync,
            max_inflight_pushes=args.max_inflight,
            max_connections=args.max_connections,
            idle_timeout=args.idle_timeout,
            drain_timeout=args.drain_timeout,
            max_message_bytes=args.max_message_bytes,
        )
        await server.start()
        recovery = server.last_recovery
        host, port = server.address
        print(f"listening on {host}:{port}", file=stdout, flush=True)
        if args.data_dir is not None:
            print(
                f"recovered {recovery.records_replayed} record(s) "
                f"after snapshot seq {recovery.snapshot_applied} "
                f"({len(recovery.quarantined)} quarantined region(s))",
                file=stdout,
                flush=True,
            )
        if args.max_frames > 0:
            # Test/diagnostic mode: poll until N frames arrived, then exit.
            while server.state.frames_applied < args.max_frames:
                await asyncio.sleep(0.01)
            await server.stop()
        else:
            await server.serve_until_stopped()
        print(
            f"served {server.state.frames_applied} frame(s), "
            f"{server.state.values_applied:.0f} values",
            file=stdout,
        )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_tags(raw_tags: List[str]) -> dict:
    tags = {}
    for raw in raw_tags:
        key, separator, value = raw.partition("=")
        if not separator or not key:
            raise argparse.ArgumentTypeError(f"tags must look like KEY=VALUE, got {raw!r}")
        tags[key] = value
    return tags


def _run_push(args: argparse.Namespace, stdin, stdout) -> int:
    from repro.exceptions import ServiceError
    from repro.registry import SketchRegistry
    from repro.serialization.frame import compress_frame
    from repro.service import FrameSpool, ServiceClient

    tags = _parse_tags(args.tag)
    registry = SketchRegistry(
        sketch_factory=lambda: DDSketch(relative_accuracy=args.relative_accuracy)
    )
    values = [value for value in _read_values(args.input, stdin)]
    if not values:
        print("no values read", file=stdout)
        return 1
    registry.add_batch(args.metric, np.asarray(values, dtype=np.float64), tags=tags or None)
    spool = FrameSpool(args.spool_dir) if args.spool_dir is not None else None
    try:
        with ServiceClient(
            args.host, args.port, retries=args.retries, deadline=args.deadline
        ) as client:
            if spool is not None and spool.pending:
                try:
                    replayed = spool.drain(client.push_envelope)
                    print(f"replayed {replayed} spooled frame(s)", file=stdout)
                except ServiceError:
                    print(f"server unreachable; {spool.pending} frame(s) still spooled", file=stdout)
            # Each CLI run is a fresh producer incarnation with no durable
            # sequence state: seed the sequence from the wall clock so it
            # lands above anything an earlier run (or a spooled envelope
            # about to be replayed) already burned for this identity, while
            # in-run retransmits still reuse the same envelope and dedup
            # exactly-once.
            import time as _time

            envelope = client.build_envelope(
                compress_frame(registry.flush_frame(), args.compress),
                host=args.agent_host,
                interval_start=args.interval_start,
                sequence=max(
                    client.next_sequence(args.agent_host), int(_time.time() * 1000)
                ),
            )
            try:
                ack = client.push_envelope(envelope)
            except ServiceError as error:
                if spool is None:
                    raise
                spooled = spool.offer(envelope)
                print(
                    f"push failed ({error}); frame "
                    + ("spooled for replay" if spooled else "dropped (spool budget exceeded)"),
                    file=stdout,
                )
                return 0 if spooled else 2
            # The push is the operation; the stats line is informational.
            # A server that goes away between the ACK and this call must
            # not turn a successful push into a failure.
            try:
                stats = client.stats()
            except ServiceError:
                stats = None
    finally:
        if spool is not None:
            spool.close()
    print(
        f"pushed {len(values)} value(s) as ({ack['host']}, seq {ack['sequence']})"
        + (" [duplicate]" if ack["duplicate"] else ""),
        file=stdout,
    )
    if stats is not None:
        print(
            f"server now holds {stats['num_series']:.0f} series, "
            f"{stats['total_count']:.0f} values",
            file=stdout,
        )
    return 0


def _run_query(args: argparse.Namespace, stdout) -> int:
    from repro.service import ServiceClient

    try:
        quantiles = [float(entry) for entry in args.quantiles.split(",") if entry.strip()]
    except ValueError:
        print(f"--quantiles must be comma-separated numbers, got {args.quantiles!r}", file=stdout)
        return 2
    if not quantiles:
        print("--quantiles must name at least one quantile", file=stdout)
        return 2
    tag_filter = _parse_tags(args.tag_filter) or None
    with ServiceClient(args.host, args.port) as client:
        if args.threshold is not None:
            reply = client.query_threshold(
                args.metric,
                quantiles[0],
                args.threshold,
                above=not args.below,
                tag_filter=tag_filter,
                window_start=args.window_start,
                window_end=args.window_end,
            )
            direction = "<" if args.below else ">"
            print(
                f"{args.metric}: p{quantiles[0] * 100:g} {direction} {args.threshold:g} — "
                f"{len(reply['matches'])} of {reply['total_series']} series "
                f"(pruned {reply['pruned']}, scanned {reply['scanned']}, "
                f"prune rate {reply['prune_rate']:.1%})",
                file=stdout,
            )
            for name in reply["matches"]:
                print(f"  {name}", file=stdout)
            return 0
        reply = client.query_quantiles(
            args.metric,
            quantiles,
            tag_filter=tag_filter,
            window_start=args.window_start,
            window_end=args.window_end,
        )
        for quantile, value in zip(quantiles, reply["values"]):
            print(f"{args.metric} p{quantile * 100:g} = {value:.6g}", file=stdout)
    return 0


def _run_load_gen(args: argparse.Namespace, stdout) -> int:
    from repro.evaluation.artifacts import write_bench_artifact
    from repro.service.loadgen import run_load_generator, run_overload_benchmark

    if args.overload:
        sections = run_overload_benchmark(seed=args.seed)
        at_1x, at_2x = sections["capacity_1x"], sections["capacity_2x"]
        spool = sections["outage_spool"]
        rows = [
            ["1x frames/sec", f"{at_1x['frames_per_sec']:.0f}"],
            ["1x shed rate", f"{at_1x['shed_rate']:.3f}"],
            ["2x frames/sec", f"{at_2x['frames_per_sec']:.0f}"],
            ["2x shed rate", f"{at_2x['shed_rate']:.3f}"],
            ["2x push p99", f"{at_2x['push_p99_ms']:.1f} ms"],
            ["2x ping p99", f"{at_2x.get('ping_p99_ms', 0.0):.1f} ms"],
            ["frames spooled", f"{spool['frames_spooled']}"],
            ["frames recovered", f"{spool['frames_recovered']}"],
            ["frames dropped", f"{spool['frames_dropped']}"],
        ]
        print(format_table(["statistic", "value"], rows), file=stdout)
        output = args.output if args.output is not None else "BENCH_overload.json"
        for name, metrics in sections.items():
            path = write_bench_artifact(output, "overload", name, metrics)
        print(f"wrote {path}", file=stdout)
        return 0

    metrics = run_load_generator(
        num_agents=args.agents,
        series_per_agent=args.series,
        num_intervals=args.intervals,
        values_per_interval=args.values,
        push_threads=args.push_threads,
        durable=not args.no_durability,
        seed=args.seed,
    )
    rows = [
        ["agents x series", f"{metrics['agents']} x {metrics['series_per_agent']}"],
        ["frames pushed", f"{metrics['frames']}"],
        ["values pushed", f"{metrics['values']}"],
        ["bytes on wire", f"{metrics['bytes_on_wire']}"],
        ["durability", "segment log" if metrics["durable"] else "in-memory"],
        ["kernel backend", metrics["kernel_backend"]],
        ["elapsed", f"{metrics['seconds']:.3f} s"],
        ["frames/sec", f"{metrics['frames_per_sec']:.0f}"],
        ["values/sec", f"{metrics['values_per_sec']:.0f}"],
        ["MB/sec", f"{metrics['mb_per_sec']:.2f}"],
    ]
    print(format_table(["statistic", "value"], rows), file=stdout)
    output = args.output if args.output is not None else "BENCH_service.json"
    path = write_bench_artifact(output, "service", "service_loadgen", metrics)
    print(f"wrote {path}", file=stdout)
    return 0


def main(argv: Optional[Sequence[str]] = None, stdin=None, stdout=None) -> int:
    """CLI entry point; returns the process exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "sketch":
            return _run_sketch(args, stdin, stdout)
        if args.command == "generate":
            return _run_generate(args, stdout)
        if args.command == "evaluate":
            return _run_evaluate(args, stdout)
        if args.command == "bounds":
            return _run_bounds(args, stdout)
        if args.command == "version":
            return _run_version(stdout)
        if args.command == "simulate":
            return _run_simulate(args, stdout)
        if args.command == "serve":
            return _run_serve(args, stdout)
        if args.command == "push":
            return _run_push(args, stdin, stdout)
        if args.command == "query":
            return _run_query(args, stdout)
        if args.command == "load-gen":
            return _run_load_gen(args, stdout)
    except ReproError as error:
        print(f"error: {error}", file=stdout)
        return 2
    except ValueError as error:
        print(f"error: invalid input ({error})", file=stdout)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
