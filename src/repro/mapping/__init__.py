"""Index mappings between positive values and integer bucket indices.

A *key mapping* defines the bucket layout of a DDSketch: it maps any positive
float ``x`` to an integer key such that all values sharing a key are within a
relative distance ``alpha`` of the value returned for that key.  The paper's
Section 2 defines the memory-optimal :class:`LogarithmicMapping`; Section 4
evaluates faster variants ("DDSketch (fast)") that approximate the logarithm
using the binary representation of floats at the cost of slightly more buckets.
"""

from repro.mapping.base import KeyMapping, MIN_SAFE_FLOAT, MAX_SAFE_FLOAT
from repro.mapping.logarithmic import LogarithmicMapping
from repro.mapping.interpolated import (
    LinearlyInterpolatedMapping,
    QuadraticallyInterpolatedMapping,
    CubicallyInterpolatedMapping,
)

__all__ = [
    "KeyMapping",
    "LogarithmicMapping",
    "LinearlyInterpolatedMapping",
    "QuadraticallyInterpolatedMapping",
    "CubicallyInterpolatedMapping",
    "MIN_SAFE_FLOAT",
    "MAX_SAFE_FLOAT",
]
