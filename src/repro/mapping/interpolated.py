"""Fast key mappings that interpolate the logarithm between powers of two.

These mappings implement the "DDSketch (fast)" configuration evaluated in
Section 4 of the paper.  Instead of computing an exact logarithm for every
inserted value, they extract the binary exponent of the float (a costless
``frexp``) and interpolate the fractional part of ``log2`` with a low-degree
polynomial of the mantissa.  The polynomial approximation makes buckets
slightly narrower than necessary in places, so for a given relative accuracy
the interpolated mappings need more buckets than the memory-optimal
:class:`~repro.mapping.LogarithmicMapping`:

===============================================  =================
mapping                                          bucket overhead
===============================================  =================
:class:`LinearlyInterpolatedMapping`             ``1 / ln 2``  (≈ 44%)
:class:`QuadraticallyInterpolatedMapping`        ``3 / (4 ln 2)``  (≈ 8%)
:class:`CubicallyInterpolatedMapping`            ``7 / (10 ln 2)``  (≈ 1%)
===============================================  =================

The relative-accuracy guarantee is preserved exactly: the multiplier applied
to the interpolated logarithm is scaled by the minimum slope of the
interpolation (with respect to the true ``log2``), which guarantees that the
ratio between the upper and lower bound of every bucket never exceeds
``gamma = (1 + alpha) / (1 - alpha)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mapping.base import KeyMapping


class _InterpolatedMapping(KeyMapping):
    """Shared machinery for the polynomial-interpolation mappings.

    Subclasses provide the polynomial approximation of ``log2`` on ``[1, 2)``
    through :meth:`_approx` / :meth:`_approx_inverse` and declare
    ``_MIN_SLOPE``, the minimum of ``d(approx log2) / d(log2)`` over an
    octave, which determines the bucket-count overhead.
    """

    #: Minimum derivative of the interpolated log2 with respect to the exact
    #: log2 over one octave.  Subclasses override this with their exact value.
    _MIN_SLOPE: float = 1.0

    def __init__(self, relative_accuracy: float, offset: float = 0.0) -> None:
        super().__init__(relative_accuracy, offset)
        # The approximation lives in (approximate) log2 space with a locally
        # varying slope.  To keep every bucket's value ratio at most gamma the
        # bucket width in approximation space must be at most
        # ``MIN_SLOPE * log2(gamma)``, i.e. the key multiplier must be at
        # least ``1 / (MIN_SLOPE * log2(gamma)) = 1 / (MIN_SLOPE * ln(gamma))``
        # in these units (the ``ln 2`` factors cancel).
        self._multiplier = 1.0 / (math.log(self._gamma) * self._MIN_SLOPE)

    # -- approximate log2 and its inverse --------------------------------- #

    def _log2_approx(self, value: float) -> float:
        """Interpolated ``log2(value)`` using the binary float representation."""
        mantissa, exponent = math.frexp(value)
        # frexp returns mantissa in [0.5, 1); rescale to [1, 2) so that the
        # polynomial approximation is defined on a full octave.
        significand = 2.0 * mantissa
        return (exponent - 1) + self._approx(significand)

    def _exp2_approx(self, value: float) -> float:
        """Inverse of :meth:`_log2_approx`."""
        exponent = math.floor(value)
        significand = self._approx_inverse(value - exponent)
        return math.ldexp(significand, int(exponent))

    # -- KeyMapping hooks -------------------------------------------------- #

    def _log_gamma(self, value: float) -> float:
        return self._log2_approx(value) * self._multiplier

    def _pow_gamma(self, key: float) -> float:
        return self._exp2_approx(key / self._multiplier)

    def key(self, value: float) -> int:
        # Flattened hot path: one frexp, one polynomial evaluation, one ceil.
        mantissa, exponent = math.frexp(value)
        approx = (exponent - 1) + self._approx(2.0 * mantissa)
        return int(math.ceil(approx * self._multiplier) + self._offset)

    def key_batch(self, values: "np.ndarray") -> "np.ndarray":
        """Vectorized interpolated key computation over a whole array.

        Parameters
        ----------
        values : numpy.ndarray
            One-dimensional array of positive finite floats.

        Returns
        -------
        numpy.ndarray
            ``int64`` keys, elementwise identical to :meth:`key` — NumPy's
            ``frexp`` is the same exact bit extraction as ``math.frexp`` and
            the polynomials below are evaluated with the same IEEE-754
            operations, so the scalar and batch paths agree bit for bit.

        Notes
        -----
        ``O(len(values))`` with no logarithm at all: one ``numpy.frexp`` and
        one low-degree polynomial pass — the "DDSketch (fast)" insertion cost
        of the paper's Section 4, amortized across the batch.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        mantissa, exponent = np.frexp(values)
        approx = (exponent - 1) + self._approx_batch(2.0 * mantissa)
        keys = np.ceil(approx * self._multiplier)
        if self._offset != 0.0:
            keys += self._offset
        return keys.astype(np.int64)

    def value_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized bucket representatives via the inverse interpolation.

        Mirrors the scalar :meth:`KeyMapping.value` operation for operation —
        ``floor``, polynomial inverse, ``ldexp`` — so batch and scalar values
        agree bit for bit (``ldexp`` is exact power-of-two scaling and the
        inverses below use identical IEEE-754 arithmetic).
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        scaled = (keys - self._offset) / self._multiplier
        exponent = np.floor(scaled)
        significand = self._approx_inverse_batch(scaled - exponent)
        values = np.ldexp(significand, exponent.astype(np.int64))
        return values * (2.0 / (1 + self._gamma))

    # -- polynomial pieces ------------------------------------------------- #

    def _approx(self, significand: float) -> float:
        """Approximate ``log2(significand)`` for ``significand`` in ``[1, 2)``.

        Must be continuous, strictly increasing, and satisfy ``approx(1) == 0``
        and ``approx(2) == 1`` so that octaves join up seamlessly.
        """
        raise NotImplementedError

    def _approx_batch(self, significands: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`_approx` over an array of significands in ``[1, 2)``.

        Must perform the same IEEE-754 operations as the scalar version so
        that batch and scalar keys are bit-identical.
        """
        raise NotImplementedError

    def _approx_inverse(self, fraction: float) -> float:
        """Inverse of :meth:`_approx`, mapping ``[0, 1)`` back to ``[1, 2)``."""
        raise NotImplementedError

    def _approx_inverse_batch(self, fractions: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`_approx_inverse` over an array of fractions.

        Must perform the same IEEE-754 operations as the scalar version so
        that batch and scalar values are bit-identical.
        """
        raise NotImplementedError


class LinearlyInterpolatedMapping(_InterpolatedMapping):
    """Approximates ``log2`` linearly within each octave.

    The fastest mapping to evaluate (a single ``frexp`` plus a multiply and
    add) at the cost of roughly 44% more buckets than the memory-optimal
    logarithmic mapping.
    """

    _MIN_SLOPE = 1.0  # min of d(approx)/d(log2) over an octave, divided by ln 2

    def _kernel_transform(self):
        """Kernel spec ``("linear", multiplier, offset)`` for exact instances."""
        if type(self) is LinearlyInterpolatedMapping:
            return ("linear", self._multiplier, self._offset)
        return None

    def _approx(self, significand: float) -> float:
        return significand - 1.0

    def _approx_batch(self, significands: "np.ndarray") -> "np.ndarray":
        return significands - 1.0

    def _approx_inverse(self, fraction: float) -> float:
        return fraction + 1.0

    def _approx_inverse_batch(self, fractions: "np.ndarray") -> "np.ndarray":
        return fractions + 1.0


class QuadraticallyInterpolatedMapping(_InterpolatedMapping):
    """Approximates ``log2`` with a quadratic polynomial within each octave.

    Uses ``A(t) = t (4 - t) / 3`` on ``t = significand - 1``, which maximizes
    the minimum slope among quadratics that join octaves continuously.  Needs
    about 8% more buckets than the logarithmic mapping.
    """

    _MIN_SLOPE = 4.0 / 3.0

    def _kernel_transform(self):
        """Kernel spec ``("quadratic", multiplier, offset)`` for exact instances."""
        if type(self) is QuadraticallyInterpolatedMapping:
            return ("quadratic", self._multiplier, self._offset)
        return None

    def _approx(self, significand: float) -> float:
        t = significand - 1.0
        return t * (4.0 - t) / 3.0

    def _approx_batch(self, significands: "np.ndarray") -> "np.ndarray":
        t = significands - 1.0
        return t * (4.0 - t) / 3.0

    def _approx_inverse(self, fraction: float) -> float:
        # Solve t^2 - 4 t + 3 * fraction = 0 for the root in [0, 1].
        t = 2.0 - math.sqrt(4.0 - 3.0 * fraction)
        return t + 1.0

    def _approx_inverse_batch(self, fractions: "np.ndarray") -> "np.ndarray":
        # sqrt is correctly rounded by IEEE-754, so this matches the scalar
        # version exactly.
        t = 2.0 - np.sqrt(4.0 - 3.0 * fractions)
        return t + 1.0


class CubicallyInterpolatedMapping(_InterpolatedMapping):
    """Approximates ``log2`` with a cubic polynomial within each octave.

    Uses ``A(t) = (6/35) t^3 - (3/5) t^2 + (10/7) t``, whose minimum slope of
    ``10/7`` (relative to the exact ``log2``, times ``ln 2``) translates to
    only about 1% more buckets than the memory-optimal logarithmic mapping
    while still avoiding any logarithm evaluation at insertion time.
    """

    _A = 6.0 / 35.0
    _B = -3.0 / 5.0
    _C = 10.0 / 7.0
    _MIN_SLOPE = 10.0 / 7.0

    def _kernel_transform(self):
        """Kernel spec ``("cubic", multiplier, offset)`` for exact instances."""
        if type(self) is CubicallyInterpolatedMapping:
            return ("cubic", self._multiplier, self._offset)
        return None

    def _approx(self, significand: float) -> float:
        t = significand - 1.0
        return ((self._A * t + self._B) * t + self._C) * t

    def _approx_batch(self, significands: "np.ndarray") -> "np.ndarray":
        t = significands - 1.0
        return ((self._A * t + self._B) * t + self._C) * t

    def _approx_inverse(self, fraction: float) -> float:
        # Invert the cubic with a few Newton iterations; the polynomial is
        # strictly increasing on [0, 1] with slope >= 10/7, so Newton from the
        # linear estimate converges in a handful of steps to full precision.
        t = fraction * 7.0 / 10.0
        for _ in range(20):
            poly = ((self._A * t + self._B) * t + self._C) * t - fraction
            slope = (3.0 * self._A * t + 2.0 * self._B) * t + self._C
            step = poly / slope
            t -= step
            if abs(step) < 1e-14:
                break
        return t + 1.0

    def _approx_inverse_batch(self, fractions: "np.ndarray") -> "np.ndarray":
        # Same Newton iteration with a per-lane freeze replicating the scalar
        # early exit: a lane whose applied step dropped below the tolerance
        # stops updating, so every lane performs exactly the float operations
        # of the scalar loop.
        t = fractions * 7.0 / 10.0
        active = np.ones(t.shape, dtype=bool)
        for _ in range(20):
            poly = ((self._A * t + self._B) * t + self._C) * t - fractions
            slope = (3.0 * self._A * t + 2.0 * self._B) * t + self._C
            step = np.where(active, poly / slope, 0.0)
            t = t - step
            active &= np.abs(step) >= 1e-14
            if not active.any():
                break
        return t + 1.0
