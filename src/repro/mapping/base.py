"""Abstract base class for DDSketch key mappings.

A key mapping assigns every positive float to an integer bucket key so that the
value reported back for that key (:meth:`KeyMapping.value`) is within a
relative distance ``relative_accuracy`` of every value assigned to the key.
This is Lemma 2 of the paper: with ``gamma = (1 + alpha) / (1 - alpha)`` and
buckets ``(gamma**(i-1), gamma**i]``, the midpoint-in-log-space representative
``2 * gamma**i / (gamma + 1)`` is an ``alpha``-accurate estimate of any value
in bucket ``i``.

Concrete subclasses differ in how they compute (an approximation of)
``log_gamma(x)``: the exact logarithm (:class:`~repro.mapping.LogarithmicMapping`)
gives the fewest buckets, while interpolated variants trade extra buckets for a
cheaper index computation, matching the "DDSketch (fast)" configuration from
the paper's evaluation.
"""

from __future__ import annotations

import math
import sys
from abc import ABC, abstractmethod
from typing import Any, Dict, Type

import numpy as np

from repro.exceptions import IllegalArgumentError

# Smallest and largest positive values that any mapping is required to handle.
# Values below MIN_SAFE_FLOAT are treated as zero by DDSketch (they go to the
# dedicated zero bucket), and values above MAX_SAFE_FLOAT are rejected to avoid
# overflowing gamma**index computations.
MIN_SAFE_FLOAT: float = sys.float_info.min * 1e3
MAX_SAFE_FLOAT: float = sys.float_info.max / 1e3


class KeyMapping(ABC):
    """Maps positive floats to integer bucket keys with relative-error control.

    Parameters
    ----------
    relative_accuracy:
        The target relative accuracy ``alpha``; must be in ``(0, 1)``.
    offset:
        An arbitrary integer shift applied to every key.  Sketches can only be
        merged when their mappings share the same ``gamma`` and offset; the
        offset exists so that serialized sketches produced by other
        implementations (which may use a non-zero shift) can be decoded.
    """

    def __init__(self, relative_accuracy: float, offset: float = 0.0) -> None:
        if (
            not isinstance(relative_accuracy, (int, float))
            or math.isnan(relative_accuracy)
            or relative_accuracy <= 0
            or relative_accuracy >= 1
        ):
            raise IllegalArgumentError(
                "relative_accuracy must be a float in (0, 1), got "
                f"{relative_accuracy!r}"
            )
        self._relative_accuracy = float(relative_accuracy)
        self._offset = float(offset)

        gamma_mantissa = 2 * relative_accuracy / (1 - relative_accuracy)
        # gamma = (1 + alpha) / (1 - alpha) = 1 + 2 * alpha / (1 - alpha)
        self._gamma = 1 + gamma_mantissa
        # Using log1p keeps precision for small alpha where gamma is close to 1.
        self._multiplier = 1 / math.log1p(gamma_mantissa)
        # The integer key space is effectively unbounded for any representable
        # float, so the only constraints are the floats themselves.
        self._min_possible = MIN_SAFE_FLOAT
        self._max_possible = MAX_SAFE_FLOAT

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #

    @property
    def relative_accuracy(self) -> float:
        """The relative accuracy ``alpha`` guaranteed by this mapping."""
        return self._relative_accuracy

    @property
    def gamma(self) -> float:
        """The bucket growth factor ``(1 + alpha) / (1 - alpha)``."""
        return self._gamma

    @property
    def offset(self) -> float:
        """The constant shift added to every key."""
        return self._offset

    @property
    def min_possible(self) -> float:
        """The smallest positive value this mapping can index without overflow."""
        return self._min_possible

    @property
    def max_possible(self) -> float:
        """The largest positive value this mapping can index without overflow."""
        return self._max_possible

    # ------------------------------------------------------------------ #
    # Core mapping operations
    # ------------------------------------------------------------------ #

    def key(self, value: float) -> int:
        """Return the integer bucket key for a positive ``value``.

        The key is ``ceil(log_gamma(value)) + offset`` for the exact
        logarithmic mapping; approximate mappings may return a slightly
        different key but always one whose bucket still satisfies the relative
        accuracy guarantee.
        """
        return int(math.ceil(self._log_gamma(value)) + self._offset)

    def key_batch(self, values: "np.ndarray") -> "np.ndarray":
        """Compute bucket keys for a whole array of positive values at once.

        This is the mapping half of the batch-ingestion hot path: one array
        expression replaces ``len(values)`` Python-level :meth:`key` calls.
        Concrete mappings override this with a fully vectorized computation
        (NumPy ``log``/``frexp`` plus the polynomial evaluated on the array);
        this base implementation is a correct per-item fallback for mappings
        that have no vectorized form.

        The grouped high-cardinality pipeline
        (:meth:`repro.core.BaseDDSketch.add_grouped_batch`) relies on one
        property of this method: because the key of a value depends only on
        the mapping (compared via ``__eq__``), a single ``key_batch`` call
        can serve a whole batch spanning *many* sketches, as long as they
        share an equal mapping.

        Parameters
        ----------
        values : numpy.ndarray
            One-dimensional array of positive finite floats.  Every element
            must be indexable by this mapping, i.e. lie in
            ``(min_possible, max_possible]``; behaviour on other inputs is
            undefined (the sketch layer routes zeros/negatives away before
            calling this).

        Returns
        -------
        numpy.ndarray
            ``int64`` array of the same length, where ``result[i] ==
            self.key(values[i])`` exactly.

        Notes
        -----
        Complexity is ``O(len(values))`` with NumPy-level constants for the
        vectorized overrides and Python-level constants for this fallback.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        return np.fromiter(
            (self.key(value) for value in values.tolist()),
            dtype=np.int64,
            count=values.size,
        )

    def value(self, key: int) -> float:
        """Return the representative value of the bucket identified by ``key``.

        The representative is chosen so that it is within ``relative_accuracy``
        of every value that maps to ``key`` (Lemma 2 of the paper).
        """
        return self._pow_gamma(key - self._offset) * (2.0 / (1 + self._gamma))

    def value_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Compute representative values for a whole array of keys at once.

        The inverse counterpart of :meth:`key_batch` and the mapping half of
        the multi-quantile read path: one array expression replaces
        ``len(keys)`` Python-level :meth:`value` calls.  Concrete mappings
        override this with a fully vectorized computation; this base
        implementation is a correct per-item fallback.

        Parameters
        ----------
        keys : numpy.ndarray
            One-dimensional array of integer bucket keys.

        Returns
        -------
        numpy.ndarray
            ``float64`` array of the same length, where ``result[i] ==
            self.value(keys[i])`` exactly — the vectorized overrides use the
            same elementwise IEEE-754 operations as the scalar path.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        return np.fromiter(
            (self.value(key) for key in keys.tolist()),
            dtype=np.float64,
            count=keys.size,
        )

    def with_doubled_gamma(self) -> "KeyMapping":
        """Return the same mapping family refined to the squared ``gamma``.

        This is the mapping half of a uniform collapse (UDDSketch, Epicoco et
        al., 2020): folding even/odd bucket pairs ``k -> ceil(k / 2)`` in the
        store turns a sketch with growth factor ``gamma`` into exactly the
        sketch with growth factor ``gamma**2``, whose relative accuracy is

            ``alpha' = 2 * alpha / (1 + alpha**2)``

        (substitute ``gamma**2 = ((1 + alpha) / (1 - alpha))**2`` into
        ``alpha' = (gamma' - 1) / (gamma' + 1)``).  The key offset is halved,
        which keeps the refined mapping consistent with the store-side fold
        **only for offset 0** (``key = ceil(log_gamma(x)) + offset`` folds to
        ``ceil(key / 2)``, which equals ``ceil(log_{gamma^2}(x)) + offset/2``
        exactly when the offset term vanishes; an odd or fractional offset is
        off the folded grid by up to one bucket).  :class:`repro.core.UDDSketch`
        therefore requires an offset-0 mapping.  For offset 0 the
        correspondence is exact for the logarithmic mapping
        (``ceil(ceil(y) / 2) == ceil(y / 2)``) and holds to within the usual
        one-bucket approximation for the interpolated mappings.
        """
        alpha = self._relative_accuracy
        return type(self)(
            relative_accuracy=(2.0 * alpha) / (1.0 + alpha * alpha),
            offset=self._offset / 2.0,
        )

    def lower_bound(self, key: int) -> float:
        """Return the exclusive lower bound of the bucket identified by ``key``."""
        return self._pow_gamma(key - self._offset - 1)

    def upper_bound(self, key: int) -> float:
        """Return the inclusive upper bound of the bucket identified by ``key``."""
        return self._pow_gamma(key - self._offset)

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #

    def _kernel_transform(self):
        """Describe this mapping to the compiled ingest kernel, if possible.

        Returns ``(mode, multiplier, key_offset)`` — where ``mode`` is one of
        ``"log"``/``"linear"``/``"quadratic"``/``"cubic"`` — when the key
        computation ``ceil(approx(x) * multiplier) + key_offset`` can be
        evaluated by :mod:`repro.kernel.native`'s fused C pass, or ``None``
        when it cannot (the kernel then transparently uses this mapping's
        :meth:`key_batch` through the NumPy reference backend, so subclassing
        a mapping never changes results — only speed).  Concrete built-in
        mappings override this with an exact-type guard for the same reason.
        """
        return None

    @abstractmethod
    def _log_gamma(self, value: float) -> float:
        """Return (an approximation of) ``log_gamma(value)`` scaled for keys."""

    @abstractmethod
    def _pow_gamma(self, key: float) -> float:
        """Inverse of :meth:`_log_gamma`."""

    # ------------------------------------------------------------------ #
    # Equality, hashing, representation
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyMapping):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._relative_accuracy == other._relative_accuracy
            and self._offset == other._offset
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._relative_accuracy, self._offset))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(relative_accuracy={self._relative_accuracy!r}, "
            f"offset={self._offset!r})"
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly description of this mapping."""
        return {
            "type": type(self).__name__,
            "relative_accuracy": self._relative_accuracy,
            "offset": self._offset,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "KeyMapping":
        """Rebuild a mapping from :meth:`to_dict` output.

        The ``type`` field selects the concrete subclass; it must name a class
        registered in :func:`mapping_registry`.
        """
        registry = mapping_registry()
        type_name = payload.get("type")
        if type_name not in registry:
            raise IllegalArgumentError(f"unknown mapping type {type_name!r}")
        mapping_cls = registry[type_name]
        return mapping_cls(
            relative_accuracy=payload["relative_accuracy"],
            offset=payload.get("offset", 0.0),
        )


def mapping_registry() -> Dict[str, Type[KeyMapping]]:
    """Return the registry of concrete mapping classes keyed by class name."""
    # Imported lazily to avoid a circular import at module load time.
    from repro.mapping.logarithmic import LogarithmicMapping
    from repro.mapping.interpolated import (
        CubicallyInterpolatedMapping,
        LinearlyInterpolatedMapping,
        QuadraticallyInterpolatedMapping,
    )

    return {
        "LogarithmicMapping": LogarithmicMapping,
        "LinearlyInterpolatedMapping": LinearlyInterpolatedMapping,
        "QuadraticallyInterpolatedMapping": QuadraticallyInterpolatedMapping,
        "CubicallyInterpolatedMapping": CubicallyInterpolatedMapping,
    }
