"""The memory-optimal logarithmic key mapping.

This is the mapping defined in Section 2 of the paper: bucket ``i`` holds the
values in ``(gamma**(i-1), gamma**i]`` where ``gamma = (1+alpha)/(1-alpha)``.
Computing the key requires an exact logarithm, which is the most expensive of
the mappings but yields the smallest possible number of buckets for a given
relative accuracy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mapping.base import KeyMapping


class LogarithmicMapping(KeyMapping):
    """Exact logarithmic mapping: ``key(x) = ceil(log(x) / log(gamma))``.

    Memory-optimal under the relative-accuracy constraint; used by the
    "DDSketch" configuration in the paper's evaluation (as opposed to
    "DDSketch (fast)", which uses an interpolated mapping).
    """

    def __init__(self, relative_accuracy: float, offset: float = 0.0) -> None:
        super().__init__(relative_accuracy, offset)
        # log(x) * multiplier == log_gamma(x)
        self._multiplier *= 1.0

    def _kernel_transform(self):
        """Kernel spec: ``("log", multiplier, offset)`` for exact instances.

        The native kernel still consumes a precomputed ``numpy.log`` array
        for this mode (libm's ``log`` is not bit-identical to NumPy's), so
        only the ceil/offset/cast tail and the sign split fuse into C.
        Subclasses are excluded so an overridden ``key_batch`` stays law.
        """
        if type(self) is LogarithmicMapping:
            return ("log", self._multiplier, self._offset)
        return None

    def _log_gamma(self, value: float) -> float:
        return math.log(value) * self._multiplier

    def _pow_gamma(self, key: float) -> float:
        # numpy's exp rather than math.exp so that the scalar path and the
        # vectorized value_batch are bit-identical (the two libraries may
        # differ in the last ulp, numpy agrees with itself between scalar and
        # array evaluation).
        return float(np.exp(key / self._multiplier))

    def key_batch(self, values: "np.ndarray") -> "np.ndarray":
        """Vectorized ``ceil(log(values) / log(gamma))`` over a whole array.

        Parameters
        ----------
        values : numpy.ndarray
            One-dimensional array of positive finite floats.

        Returns
        -------
        numpy.ndarray
            ``int64`` keys, elementwise equal to :meth:`KeyMapping.key`.

        Notes
        -----
        ``O(len(values))`` with a single ``numpy.log`` pass — this is the one
        logarithm per value the paper counts as DDSketch's insertion cost
        (Section 2.1), amortized across the batch instead of paid per Python
        call.
        """
        values = np.asarray(values, dtype=np.float64).reshape(-1)
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        keys = np.ceil(np.log(values) * self._multiplier)
        if self._offset != 0.0:
            keys += self._offset
        return keys.astype(np.int64)

    def value_batch(self, keys: "np.ndarray") -> "np.ndarray":
        """Vectorized bucket representatives: one ``numpy.exp`` pass.

        Elementwise identical to :meth:`KeyMapping.value` — the scalar path
        uses the same ``numpy.exp`` so both agree bit for bit.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        if keys.size == 0:
            return np.empty(0, dtype=np.float64)
        scaled = (keys - self._offset) / self._multiplier
        return np.exp(scaled) * (2.0 / (1 + self._gamma))
