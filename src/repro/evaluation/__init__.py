"""Evaluation harness reproducing the experiments of Section 4.

The modules here generate the data behind every table and figure of the
paper's evaluation:

* :mod:`repro.evaluation.config` — the sketch configurations of Table 2 and
  the factory that instantiates every sketch under comparison.
* :mod:`repro.evaluation.accuracy` — relative-error and rank-error
  measurements (Figures 4, 10, 11).
* :mod:`repro.evaluation.memory` — sketch size measurements (Figures 6, 7).
* :mod:`repro.evaluation.timing` — add and merge timing (Figures 8, 9).
* :mod:`repro.evaluation.runner` — per-figure experiment drivers producing
  structured results.
* :mod:`repro.evaluation.report` — plain-text table/series formatting used by
  the benchmark harness output and EXPERIMENTS.md.
"""

from repro.evaluation.config import (
    ExperimentParameters,
    DEFAULT_PARAMETERS,
    SKETCH_NAMES,
    build_sketch,
    build_all_sketches,
    bench_scale,
    n_sweep,
)
from repro.evaluation.accuracy import (
    AccuracyMeasurement,
    measure_accuracy,
    relative_error,
    rank_error,
)
from repro.evaluation.memory import measure_sketch_sizes, measure_ddsketch_bins
from repro.evaluation.timing import time_add, time_merge, time_query, TimingResult
from repro.evaluation.report import format_table, format_series, format_figure_header

__all__ = [
    "ExperimentParameters",
    "DEFAULT_PARAMETERS",
    "SKETCH_NAMES",
    "build_sketch",
    "build_all_sketches",
    "bench_scale",
    "n_sweep",
    "AccuracyMeasurement",
    "measure_accuracy",
    "relative_error",
    "rank_error",
    "measure_sketch_sizes",
    "measure_ddsketch_bins",
    "time_add",
    "time_merge",
    "time_query",
    "TimingResult",
    "format_table",
    "format_series",
    "format_figure_header",
]
