"""Experiment configuration: the sketch parameters of Table 2.

The paper compares four sketches with the parameters below (Table 2); the
factory functions here build each of them, configured per data set where
necessary (HDR Histogram needs its trackable range up front).

=================  ==========================================
sketch             parameters
=================  ==========================================
DDSketch           ``alpha = 0.01``, ``m = 2048``
DDSketch (fast)    same, with the interpolated key mapping
HDR Histogram      ``2`` significant digits
GKArray            ``epsilon = 0.01``
Moments sketch     ``k = 20`` moments, arcsinh compression on
=================  ==========================================

Two extension sketches from the related-work section (t-digest and KLL) can be
requested explicitly but are not part of the default comparison set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import GKArray, HDRHistogram, KLLSketch, MomentsSketch, TDigest
from repro.core import DDSketch, FastDDSketch
from repro.datasets.registry import DatasetSpec, get_dataset
from repro.exceptions import IllegalArgumentError

#: Names of the sketches compared in the paper's figures, in plotting order.
SKETCH_NAMES: Tuple[str, ...] = (
    "DDSketch",
    "DDSketch (fast)",
    "GKArray",
    "HDRHistogram",
    "MomentsSketch",
)

#: Extension sketches available to the harness but not in the paper's figures.
EXTENSION_SKETCH_NAMES: Tuple[str, ...] = ("TDigest", "KLL")


@dataclass(frozen=True)
class ExperimentParameters:
    """Sketch parameters used across all experiments (Table 2)."""

    ddsketch_relative_accuracy: float = 0.01
    ddsketch_bin_limit: int = 2048
    hdr_significant_digits: int = 2
    gk_rank_accuracy: float = 0.01
    moments_num_moments: int = 20
    moments_compression: bool = True
    tdigest_compression: float = 100.0
    kll_k: int = 200

    def as_table_rows(self) -> List[Tuple[str, str]]:
        """Rows of Table 2: (sketch, parameter summary)."""
        return [
            (
                "DDSketch",
                f"alpha = {self.ddsketch_relative_accuracy}, m = {self.ddsketch_bin_limit}",
            ),
            ("HDR Histogram", f"d = {self.hdr_significant_digits}"),
            ("GKArray", f"epsilon = {self.gk_rank_accuracy}"),
            (
                "Moments sketch",
                f"k = {self.moments_num_moments}, "
                f"compression {'enabled' if self.moments_compression else 'disabled'}",
            ),
        ]


#: The exact configuration of the paper's experiments.
DEFAULT_PARAMETERS = ExperimentParameters()


def build_sketch(
    name: str,
    dataset: Optional[DatasetSpec] = None,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
):
    """Instantiate the sketch called ``name``, configured for ``dataset``.

    ``dataset`` is required for HDR Histogram (its range must be fixed up
    front) and ignored by the other sketches.
    """
    if name == "DDSketch":
        return DDSketch(
            relative_accuracy=parameters.ddsketch_relative_accuracy,
            bin_limit=parameters.ddsketch_bin_limit,
        )
    if name == "DDSketch (fast)":
        return FastDDSketch(
            relative_accuracy=parameters.ddsketch_relative_accuracy,
            bin_limit=parameters.ddsketch_bin_limit,
        )
    if name == "GKArray":
        return GKArray(rank_accuracy=parameters.gk_rank_accuracy)
    if name == "HDRHistogram":
        if dataset is None:
            raise IllegalArgumentError("HDRHistogram needs a dataset to size its range")
        lowest, highest = dataset.hdr_range
        return HDRHistogram(
            lowest_discernible_value=lowest,
            highest_trackable_value=highest,
            significant_digits=parameters.hdr_significant_digits,
        )
    if name == "MomentsSketch":
        return MomentsSketch(
            num_moments=parameters.moments_num_moments,
            compression=parameters.moments_compression,
        )
    if name == "TDigest":
        return TDigest(compression=parameters.tdigest_compression)
    if name == "KLL":
        return KLLSketch(k=parameters.kll_k, seed=0)
    raise IllegalArgumentError(f"unknown sketch name {name!r}")


def build_all_sketches(
    dataset_name: str,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    include_extensions: bool = False,
) -> Dict[str, object]:
    """Build every sketch in the comparison set, keyed by display name."""
    dataset = get_dataset(dataset_name)
    names = SKETCH_NAMES + (EXTENSION_SKETCH_NAMES if include_extensions else ())
    return {name: build_sketch(name, dataset, parameters) for name in names}


def bench_scale() -> float:
    """Scale factor for benchmark workload sizes.

    The paper sweeps ``n`` up to ``1e8`` on JVM implementations; pure-Python
    benchmarks default to much smaller sweeps so the whole suite runs in
    minutes.  Set the ``REPRO_BENCH_SCALE`` environment variable (e.g. to 10
    or 100) to enlarge every sweep proportionally.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "1")
    try:
        scale = float(raw)
    except ValueError:
        raise IllegalArgumentError(f"REPRO_BENCH_SCALE must be a number, got {raw!r}") from None
    if scale <= 0:
        raise IllegalArgumentError(f"REPRO_BENCH_SCALE must be positive, got {scale!r}")
    return scale


def n_sweep(base: Tuple[int, ...] = (1_000, 10_000, 100_000)) -> List[int]:
    """The sweep of stream sizes used by the per-figure experiments."""
    scale = bench_scale()
    return [max(int(n * scale), 1) for n in base]
