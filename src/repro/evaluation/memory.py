"""Sketch memory measurements (Figures 6 and 7 of the paper).

Sizes are taken from each sketch's :meth:`size_in_bytes` memory model, which
estimates what a tight native implementation would allocate (8-byte counters
plus structural overhead) so that the comparison is between the data
structures themselves and not CPython object overhead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.datasets.registry import get_dataset
from repro.evaluation.config import (
    DEFAULT_PARAMETERS,
    ExperimentParameters,
    SKETCH_NAMES,
    build_sketch,
)
from repro.exceptions import IllegalArgumentError


def measure_sketch_sizes(
    dataset_name: str,
    n_values_sweep: Sequence[int],
    sketch_names: Sequence[str] = SKETCH_NAMES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
) -> Dict[str, List[Tuple[int, int]]]:
    """Sketch size in bytes as a function of the stream size (Figure 6).

    Returns ``{sketch_name: [(n, size_in_bytes), ...]}`` with one entry per
    value of ``n_values_sweep``.
    """
    dataset = get_dataset(dataset_name)
    results: Dict[str, List[Tuple[int, int]]] = {name: [] for name in sketch_names}
    for n_values in n_values_sweep:
        if n_values <= 0:
            raise IllegalArgumentError(f"n_values must be positive, got {n_values!r}")
        values = dataset.generator(int(n_values), seed)
        for name in sketch_names:
            sketch = build_sketch(name, dataset, parameters)
            for value in values:
                sketch.add(float(value))
            results[name].append((int(n_values), sketch.size_in_bytes()))
    return results


def measure_ddsketch_bins(
    dataset_name: str,
    n_values_sweep: Sequence[int],
    relative_accuracy: float = 0.01,
    bin_limit: int = 2048,
    seed: int = 0,
) -> List[Tuple[int, int]]:
    """Number of non-empty DDSketch buckets as a function of n (Figure 7).

    The paper's Figure 7 shows that even after ``1e10`` Pareto values the
    number of buckets stays around 900 — less than half the 2048 limit — so
    the collapsing mechanism never kicks in for realistic data.
    """
    from repro.core.ddsketch import DDSketch

    dataset = get_dataset(dataset_name)
    series: List[Tuple[int, int]] = []
    for n_values in n_values_sweep:
        if n_values <= 0:
            raise IllegalArgumentError(f"n_values must be positive, got {n_values!r}")
        sketch = DDSketch(relative_accuracy=relative_accuracy, bin_limit=bin_limit)
        values = dataset.generator(int(n_values), seed)
        for value in values:
            sketch.add(float(value))
        series.append((int(n_values), sketch.num_buckets))
    return series
