"""Accuracy measurements: relative error and rank error of quantile estimates.

These are the two error measures of the paper's evaluation:

* *relative error* (Definition 1): ``|estimate - actual| / actual`` — the
  quantity DDSketch bounds by ``alpha`` (Figure 10);
* *rank error*: ``|rank(estimate) - rank(actual)| / n`` — the quantity GK
  bounds by ``epsilon`` (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.baselines.exact import ExactQuantiles
from repro.datasets.registry import get_dataset
from repro.evaluation.config import (
    DEFAULT_PARAMETERS,
    ExperimentParameters,
    SKETCH_NAMES,
    build_sketch,
)
from repro.exceptions import IllegalArgumentError

#: Quantiles reported in Figures 10 and 11 of the paper.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def relative_error(estimate: float, actual: float) -> float:
    """Relative error of an estimate (Definition 1 of the paper).

    When the actual value is zero the absolute error is returned instead so
    the measure stays finite.
    """
    if actual == 0:
        return abs(estimate - actual)
    return abs(estimate - actual) / abs(actual)


def rank_error(estimate: float, quantile: float, exact: ExactQuantiles) -> float:
    """Normalized rank error of an estimate of the q-quantile."""
    return exact.rank_error(estimate, quantile)


@dataclass
class AccuracyMeasurement:
    """Errors of every sketch on one data set at one stream size."""

    dataset: str
    n_values: int
    quantiles: Sequence[float]
    relative_errors: Dict[str, Dict[float, float]] = field(default_factory=dict)
    rank_errors: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def worst_relative_error(self, sketch_name: str) -> float:
        """Largest relative error of ``sketch_name`` across the quantiles."""
        return max(self.relative_errors[sketch_name].values())

    def worst_rank_error(self, sketch_name: str) -> float:
        """Largest rank error of ``sketch_name`` across the quantiles."""
        return max(self.rank_errors[sketch_name].values())


def measure_accuracy(
    dataset_name: str,
    n_values: int,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    sketch_names: Sequence[str] = SKETCH_NAMES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    num_trials: int = 1,
    seed: int = 0,
) -> AccuracyMeasurement:
    """Measure relative and rank errors of each sketch on one data set.

    The errors are averaged over ``num_trials`` independent streams (the paper
    plots average errors); a single trial is the default because the variance
    is small for the stream sizes used in the benchmarks.
    """
    if n_values <= 0:
        raise IllegalArgumentError(f"n_values must be positive, got {n_values!r}")
    if num_trials <= 0:
        raise IllegalArgumentError(f"num_trials must be positive, got {num_trials!r}")

    dataset = get_dataset(dataset_name)
    accumulated_rel: Dict[str, Dict[float, List[float]]] = {
        name: {q: [] for q in quantiles} for name in sketch_names
    }
    accumulated_rank: Dict[str, Dict[float, List[float]]] = {
        name: {q: [] for q in quantiles} for name in sketch_names
    }

    for trial in range(num_trials):
        values = dataset.generator(n_values, seed + trial)
        exact = ExactQuantiles(values.tolist())
        for name in sketch_names:
            sketch = build_sketch(name, dataset, parameters)
            for value in values:
                sketch.add(float(value))
            for quantile in quantiles:
                estimate = sketch.get_quantile_value(quantile)
                assert estimate is not None
                accumulated_rel[name][quantile].append(
                    relative_error(estimate, exact.quantile(quantile))
                )
                accumulated_rank[name][quantile].append(exact.rank_error(estimate, quantile))

    measurement = AccuracyMeasurement(
        dataset=dataset_name, n_values=n_values, quantiles=tuple(quantiles)
    )
    for name in sketch_names:
        measurement.relative_errors[name] = {
            q: float(np.mean(errors)) for q, errors in accumulated_rel[name].items()
        }
        measurement.rank_errors[name] = {
            q: float(np.mean(errors)) for q, errors in accumulated_rank[name].items()
        }
    return measurement


def measure_batched_quantile_tracking(
    quantiles: Sequence[float] = (0.5, 0.75, 0.9, 0.99),
    num_batches: int = 20,
    batch_size: int = 100_000,
    relative_accuracy: float = 0.01,
    rank_accuracy: float = 0.005,
    seed: int = 0,
    generator=None,
) -> Dict[str, Dict[float, List[float]]]:
    """Reproduce Figure 4: track quantiles over a stream of batches.

    Feeds ``num_batches`` batches of ``batch_size`` values into a
    relative-error sketch (DDSketch) and a rank-error sketch (GKArray), and
    records each sketch's estimate (and the exact value) for every requested
    quantile after every batch.

    Returns a mapping ``series[estimator][quantile] -> list of per-batch
    values`` with estimators ``"actual"``, ``"relative_error_sketch"`` and
    ``"rank_error_sketch"``.
    """
    from repro.baselines.gk import GKArray
    from repro.core.ddsketch import DDSketch
    from repro.datasets.synthetic import web_latency_values

    if generator is None:
        generator = web_latency_values

    ddsketch = DDSketch(relative_accuracy=relative_accuracy)
    gk = GKArray(rank_accuracy=rank_accuracy)
    exact = ExactQuantiles()

    series: Dict[str, Dict[float, List[float]]] = {
        "actual": {q: [] for q in quantiles},
        "relative_error_sketch": {q: [] for q in quantiles},
        "rank_error_sketch": {q: [] for q in quantiles},
    }
    for batch in range(num_batches):
        values = generator(batch_size, seed + batch)
        for value in values:
            value = float(value)
            ddsketch.add(value)
            gk.add(value)
            exact.add(value)
        for quantile in quantiles:
            series["actual"][quantile].append(exact.quantile(quantile))
            series["relative_error_sketch"][quantile].append(
                float(ddsketch.get_quantile_value(quantile))
            )
            series["rank_error_sketch"][quantile].append(
                float(gk.get_quantile_value(quantile))
            )
    return series
