"""Plain-text formatting of experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent (fixed-width aligned tables, one series
per sketch) and are also used to assemble EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table.

    Every cell is converted with ``str``; columns are padded to the widest
    cell.  Returns a single string with newlines (no trailing newline).
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[index]) for index, cell in enumerate(cells)]
        return "  ".join(padded).rstrip()

    lines = [render_row([str(h) for h in headers])]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_series(
    series: Dict[str, List[Tuple[float, float]]],
    x_label: str = "n",
    y_label: str = "value",
    float_format: str = "{:.6g}",
) -> str:
    """Render ``{series_name: [(x, y), ...]}`` as an aligned table.

    The x values of the first series define the rows; every series contributes
    one column.  Used for the Figure 6–11 style sweeps.
    """
    names = list(series)
    if not names:
        return "(no data)"
    x_values = [x for x, _ in series[names[0]]]
    headers = [x_label] + names
    rows = []
    for row_index, x in enumerate(x_values):
        row = [float_format.format(x) if isinstance(x, float) else str(x)]
        for name in names:
            points = series[name]
            if row_index < len(points):
                row.append(float_format.format(points[row_index][1]))
            else:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows)


def format_figure_header(figure: str, description: str) -> str:
    """Banner line identifying which paper artifact a benchmark regenerates."""
    title = f"{figure}: {description}"
    rule = "=" * len(title)
    return f"{rule}\n{title}\n{rule}"


def format_quantile_errors(
    errors: Dict[str, Dict[float, float]], metric_name: str
) -> str:
    """Render per-sketch, per-quantile errors as a table (Figures 10/11 rows)."""
    quantiles = sorted({q for per_sketch in errors.values() for q in per_sketch})
    headers = [metric_name] + [f"p{int(q * 100)}" if q < 1 else "p100" for q in quantiles]
    rows = []
    for sketch_name, per_quantile in errors.items():
        row = [sketch_name] + [
            "{:.3e}".format(per_quantile[q]) if q in per_quantile else "-" for q in quantiles
        ]
        rows.append(row)
    return format_table(headers, rows)
