"""Per-figure experiment drivers.

Each function regenerates the data behind one table or figure of the paper and
returns it as plain Python structures; the benchmark modules under
``benchmarks/`` call these, print the series via :mod:`repro.evaluation.report`
and assert the qualitative findings (who wins, by roughly what factor).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.exact import ExactQuantiles
from repro.core.protocol import TABLE1_METADATA
from repro.datasets.registry import dataset_names, get_dataset
from repro.evaluation.accuracy import (
    DEFAULT_QUANTILES,
    AccuracyMeasurement,
    measure_accuracy,
    measure_batched_quantile_tracking,
)
from repro.evaluation.config import (
    DEFAULT_PARAMETERS,
    ExperimentParameters,
    SKETCH_NAMES,
    n_sweep,
)
from repro.evaluation.memory import measure_ddsketch_bins, measure_sketch_sizes
from repro.evaluation.timing import TimingResult, time_all_adds, time_all_merges
from repro.monitoring.pipeline import MonitoringSimulation, SimulationReport


def table1_properties() -> List[Tuple[str, str, str, str]]:
    """Table 1: (sketch, guarantee, range, mergeability) for each algorithm."""
    return [
        (meta.name, meta.guarantee, meta.value_range, meta.mergeability)
        for meta in TABLE1_METADATA.values()
    ]


def table2_parameters(
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
) -> List[Tuple[str, str]]:
    """Table 2: the sketch parameters used throughout the experiments."""
    return parameters.as_table_rows()


def figure2_latency_timeseries(
    num_hosts: int = 8,
    requests_per_interval: int = 2_000,
    num_intervals: int = 24,
    seed: int = 0,
) -> SimulationReport:
    """Figure 2: average vs p50/p75 latency of a web endpoint over time."""
    simulation = MonitoringSimulation(
        num_hosts=num_hosts,
        requests_per_interval=requests_per_interval,
        num_intervals=num_intervals,
        seed=seed,
    )
    return simulation.run()


def figure3_histogram(
    n_values: int = 200_000, num_bins: int = 50, seed: int = 0
) -> Dict[str, List[Tuple[float, int]]]:
    """Figure 3: histograms of web response times, p0–p95 and p0–p100.

    Returns two named histograms as ``[(bin_right_edge, count), ...]``.
    """
    from repro.datasets.synthetic import web_latency_values

    values = np.sort(web_latency_values(n_values, seed))
    p95 = values[int(0.95 * (len(values) - 1))]

    def build(upper: float) -> List[Tuple[float, int]]:
        subset = values[values <= upper]
        counts, edges = np.histogram(subset, bins=num_bins)
        return [(float(edges[index + 1]), int(count)) for index, count in enumerate(counts)]

    return {"p0_p95": build(float(p95)), "p0_p100": build(float(values[-1]))}


def figure4_quantile_tracking(
    num_batches: int = 20,
    batch_size: int = 100_000,
    seed: int = 0,
) -> Dict[str, Dict[float, List[float]]]:
    """Figure 4: actual vs rank-error-sketch vs relative-error-sketch quantiles."""
    return measure_batched_quantile_tracking(
        num_batches=num_batches, batch_size=batch_size, seed=seed
    )


def figure5_dataset_histograms(
    n_values: int = 100_000, num_bins: int = 40, seed: int = 0
) -> Dict[str, List[Tuple[float, int]]]:
    """Figure 5: histograms of the pareto, span and power data sets."""
    histograms: Dict[str, List[Tuple[float, int]]] = {}
    for name in dataset_names():
        values = get_dataset(name).generator(n_values, seed)
        counts, edges = np.histogram(values, bins=num_bins)
        histograms[name] = [
            (float(edges[index + 1]), int(count)) for index, count in enumerate(counts)
        ]
    return histograms


def figure6_sketch_sizes(
    n_values_sweep: Optional[Sequence[int]] = None,
    datasets: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, List[Tuple[int, int]]]]:
    """Figure 6: sketch size in bytes vs stream size, per data set."""
    sweep = list(n_values_sweep) if n_values_sweep is not None else n_sweep()
    names = list(datasets) if datasets is not None else list(dataset_names())
    return {
        dataset: measure_sketch_sizes(dataset, sweep, seed=seed) for dataset in names
    }


def figure7_bin_counts(
    n_values_sweep: Optional[Sequence[int]] = None, seed: int = 0
) -> List[Tuple[int, int]]:
    """Figure 7: number of DDSketch buckets vs stream size on the pareto data."""
    sweep = list(n_values_sweep) if n_values_sweep is not None else n_sweep()
    return measure_ddsketch_bins("pareto", sweep, seed=seed)


def figure8_add_times(
    dataset: str = "pareto", n_values: int = 50_000, seed: int = 0
) -> Dict[str, TimingResult]:
    """Figure 8: average time to add a value, per sketch."""
    return time_all_adds(dataset, n_values, seed=seed)


def figure9_merge_times(
    dataset: str = "pareto", n_values: int = 50_000, seed: int = 0
) -> Dict[str, TimingResult]:
    """Figure 9: average time to merge two same-size sketches, per sketch."""
    return time_all_merges(dataset, n_values, seed=seed)


def figure10_relative_errors(
    n_values_sweep: Optional[Sequence[int]] = None,
    datasets: Optional[Sequence[str]] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    seed: int = 0,
) -> Dict[str, Dict[int, AccuracyMeasurement]]:
    """Figure 10: relative error of p50/p95/p99 estimates, per data set and n."""
    sweep = list(n_values_sweep) if n_values_sweep is not None else n_sweep()
    names = list(datasets) if datasets is not None else list(dataset_names())
    results: Dict[str, Dict[int, AccuracyMeasurement]] = {}
    for dataset in names:
        results[dataset] = {
            n: measure_accuracy(dataset, n, quantiles=quantiles, seed=seed) for n in sweep
        }
    return results


def figure11_rank_errors(
    n_values_sweep: Optional[Sequence[int]] = None,
    datasets: Optional[Sequence[str]] = None,
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
    seed: int = 0,
) -> Dict[str, Dict[int, AccuracyMeasurement]]:
    """Figure 11: rank error of p50/p95/p99 estimates, per data set and n.

    The same measurement run as Figure 10 — an :class:`AccuracyMeasurement`
    carries both error kinds — kept as a separate entry point so each figure
    has its own benchmark.
    """
    return figure10_relative_errors(
        n_values_sweep=n_values_sweep, datasets=datasets, quantiles=quantiles, seed=seed
    )
