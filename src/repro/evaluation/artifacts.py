"""The shared schema of the repository's ``BENCH_*.json`` artifacts.

Every benchmark trajectory file committed at the repository root (and
archived by CI) carries the same envelope, so the perf history stays
machine-readable across PRs::

    {
      "name":      "<artifact name, e.g. 'service'>",
      "timestamp": "<ISO-8601 UTC, e.g. '2026-08-08T12:00:00+00:00'>",
      "machine":   {"platform": ..., "python": ..., "cpu_count": ...},
      "metrics":   {"<section>": {"<measurement>": <number|bool|string>}}
    }

:func:`write_bench_artifact` merges one ``metrics`` section at a time (the
emitters run as separate tests), refreshing the envelope on every write.
``tests/test_bench_artifacts.py`` validates every ``BENCH_*.json`` against
this schema, including files produced by older emitters — so changing the
envelope here requires regenerating the committed artifacts.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict

from repro.exceptions import IllegalArgumentError

#: Keys every artifact envelope must carry.
REQUIRED_KEYS = ("name", "timestamp", "machine", "metrics")

#: Keys every ``machine`` section must carry.
REQUIRED_MACHINE_KEYS = ("platform", "python", "cpu_count")


def machine_info() -> Dict[str, Any]:
    """The machine fingerprint recorded in every benchmark artifact."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
    }


def bench_artifact(name: str, metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Build one artifact document in the shared schema."""
    if not name:
        raise IllegalArgumentError("artifact name must be non-empty")
    if not isinstance(metrics, dict) or not metrics:
        raise IllegalArgumentError("artifact metrics must be a non-empty dict")
    return {
        "name": str(name),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine": machine_info(),
        "metrics": metrics,
    }


def write_bench_artifact(path, name: str, section: str, metrics: Dict[str, Any]) -> Path:
    """Merge one metrics section into the artifact at ``path``.

    Existing sections written by other emitters are preserved; the envelope
    (name, timestamp, machine) is refreshed.  A file that predates the
    shared schema (or is unreadable) is replaced wholesale.  Returns the
    written path.
    """
    path = Path(path)
    existing: Dict[str, Any] = {}
    if path.is_file():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict) and isinstance(loaded.get("metrics"), dict):
                existing = loaded["metrics"]
        except (json.JSONDecodeError, OSError):
            existing = {}
    existing[section] = metrics
    document = bench_artifact(name, existing)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def validate_bench_artifact(document: Any) -> None:
    """Assert one loaded artifact document matches the shared schema.

    Raises :class:`IllegalArgumentError` describing the first violation —
    used by ``tests/test_bench_artifacts.py`` and usable by external
    tooling that consumes the trajectory files.
    """
    if not isinstance(document, dict):
        raise IllegalArgumentError(f"artifact must be a JSON object, got {type(document).__name__}")
    for key in REQUIRED_KEYS:
        if key not in document:
            raise IllegalArgumentError(f"artifact is missing the required key {key!r}")
    if not isinstance(document["name"], str) or not document["name"]:
        raise IllegalArgumentError("artifact 'name' must be a non-empty string")
    try:
        datetime.datetime.fromisoformat(document["timestamp"])
    except (TypeError, ValueError):
        raise IllegalArgumentError(
            f"artifact 'timestamp' {document.get('timestamp')!r} is not ISO-8601"
        ) from None
    machine = document["machine"]
    if not isinstance(machine, dict):
        raise IllegalArgumentError("artifact 'machine' must be an object")
    for key in REQUIRED_MACHINE_KEYS:
        if key not in machine:
            raise IllegalArgumentError(f"artifact 'machine' is missing {key!r}")
    metrics = document["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise IllegalArgumentError("artifact 'metrics' must be a non-empty object")
    for section, payload in metrics.items():
        if not isinstance(payload, dict) or not payload:
            raise IllegalArgumentError(
                f"artifact metrics section {section!r} must be a non-empty object"
            )
        for measurement, value in payload.items():
            if not isinstance(value, (int, float, bool, str)):
                raise IllegalArgumentError(
                    f"metric {section}.{measurement} must be a scalar, "
                    f"got {type(value).__name__}"
                )
