"""Insertion, merge, and quantile-query timing (Figures 8–11 of the paper).

The absolute numbers measured here are for pure-Python implementations and are
therefore orders of magnitude above the paper's JVM measurements; what the
benchmarks check (and what EXPERIMENTS.md reports) is the *relative ordering*
of the sketches: the interpolated-mapping DDSketch is the fastest DDSketch
variant at insertion, GKArray is the slowest inserter, the Moments sketch has
by far the fastest merge, and HDR Histogram's merge cost scales with its large
bucket array.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.datasets.registry import get_dataset
from repro.evaluation.config import (
    DEFAULT_PARAMETERS,
    ExperimentParameters,
    SKETCH_NAMES,
    build_sketch,
)
from repro.exceptions import IllegalArgumentError


@dataclass(frozen=True)
class TimingResult:
    """Timing of one operation for one sketch."""

    sketch: str
    dataset: str
    n_values: int
    seconds_total: float

    @property
    def nanos_per_operation(self) -> float:
        """Average time per ``add`` (or per merged value) in nanoseconds."""
        return self.seconds_total / max(self.n_values, 1) * 1e9


def time_add(
    sketch_name: str,
    dataset_name: str,
    n_values: int,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
) -> TimingResult:
    """Time adding ``n_values`` values of a data set to an empty sketch (Figure 8)."""
    if n_values <= 0:
        raise IllegalArgumentError(f"n_values must be positive, got {n_values!r}")
    dataset = get_dataset(dataset_name)
    values = [float(v) for v in dataset.generator(int(n_values), seed)]
    sketch = build_sketch(sketch_name, dataset, parameters)
    add = sketch.add
    start = time.perf_counter()
    for value in values:
        add(value)
    elapsed = time.perf_counter() - start
    return TimingResult(
        sketch=sketch_name, dataset=dataset_name, n_values=int(n_values), seconds_total=elapsed
    )


def time_merge(
    sketch_name: str,
    dataset_name: str,
    n_values: int,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
    repetitions: int = 5,
) -> TimingResult:
    """Time merging two sketches of ``n_values / 2`` values each (Figure 9).

    The merge target is re-created for every repetition so repeated merges do
    not grow the sketch, and the reported time is the average over
    ``repetitions`` merges.
    """
    if n_values <= 1:
        raise IllegalArgumentError(f"n_values must be at least 2, got {n_values!r}")
    dataset = get_dataset(dataset_name)
    values = [float(v) for v in dataset.generator(int(n_values), seed)]
    half = len(values) // 2

    left_template = build_sketch(sketch_name, dataset, parameters)
    right = build_sketch(sketch_name, dataset, parameters)
    for value in values[:half]:
        left_template.add(value)
    for value in values[half:]:
        right.add(value)

    total = 0.0
    for _ in range(max(repetitions, 1)):
        left = left_template.copy() if hasattr(left_template, "copy") else left_template
        start = time.perf_counter()
        left.merge(right)
        total += time.perf_counter() - start
    return TimingResult(
        sketch=sketch_name,
        dataset=dataset_name,
        n_values=int(n_values),
        seconds_total=total / max(repetitions, 1),
    )


#: Quantiles probed by the query-timing harness: the dashboard read pattern
#: (tail quantiles plus the body of the distribution), nine probes as in the
#: paper's accuracy figures.
DEFAULT_QUERY_QUANTILES: Tuple[float, ...] = (
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    0.75,
    0.9,
    0.95,
    0.99,
)


def time_query(
    sketch_name: str,
    dataset_name: str,
    n_values: int,
    quantiles: Sequence[float] = DEFAULT_QUERY_QUANTILES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
    repetitions: int = 100,
) -> TimingResult:
    """Time answering a batch of quantiles against a pre-built sketch.

    The sketch is filled with ``n_values`` values of the data set once
    (outside the timed region), then asked for all ``quantiles`` in every
    repetition — through the batched
    :meth:`~repro.core.BaseDDSketch.get_quantiles` read path when the sketch
    has one, falling back to per-quantile ``get_quantile_value`` calls
    otherwise.  The returned :class:`TimingResult` counts one *operation* per
    quantile evaluation (``len(quantiles) * repetitions``), so
    ``nanos_per_operation`` is the average cost of one quantile answer.
    """
    if n_values <= 0:
        raise IllegalArgumentError(f"n_values must be positive, got {n_values!r}")
    if not quantiles:
        raise IllegalArgumentError("quantiles must be a non-empty sequence")
    dataset = get_dataset(dataset_name)
    values = dataset.generator(int(n_values), seed)
    sketch = build_sketch(sketch_name, dataset, parameters)
    sketch.add_all(values)

    quantile_list = [float(quantile) for quantile in quantiles]
    repetitions = max(int(repetitions), 1)
    get_quantiles = getattr(sketch, "get_quantiles", None)
    start = time.perf_counter()
    if get_quantiles is not None:
        for _ in range(repetitions):
            get_quantiles(quantile_list)
    else:
        get_quantile_value = sketch.get_quantile_value
        for _ in range(repetitions):
            for quantile in quantile_list:
                get_quantile_value(quantile)
    elapsed = time.perf_counter() - start
    return TimingResult(
        sketch=sketch_name,
        dataset=dataset_name,
        n_values=len(quantile_list) * repetitions,
        seconds_total=elapsed,
    )


def time_all_adds(
    dataset_name: str,
    n_values: int,
    sketch_names: Sequence[str] = SKETCH_NAMES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
) -> Dict[str, TimingResult]:
    """Insertion timing for every sketch in the comparison set."""
    return {
        name: time_add(name, dataset_name, n_values, parameters, seed)
        for name in sketch_names
    }


def time_all_merges(
    dataset_name: str,
    n_values: int,
    sketch_names: Sequence[str] = SKETCH_NAMES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
) -> Dict[str, TimingResult]:
    """Merge timing for every sketch in the comparison set."""
    return {
        name: time_merge(name, dataset_name, n_values, parameters, seed)
        for name in sketch_names
    }


def time_all_queries(
    dataset_name: str,
    n_values: int,
    sketch_names: Sequence[str] = SKETCH_NAMES,
    quantiles: Sequence[float] = DEFAULT_QUERY_QUANTILES,
    parameters: ExperimentParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
    repetitions: int = 100,
) -> Dict[str, TimingResult]:
    """Multi-quantile query timing for every sketch in the comparison set."""
    return {
        name: time_query(name, dataset_name, n_values, quantiles, parameters, seed, repetitions)
        for name in sketch_names
    }
