"""In-memory state of the aggregation service, deterministically rebuildable.

:class:`ServiceState` is everything the server knows, expressed so that
*applying the same accepted envelopes in the same order always produces the
same bytes*: recovery replays the segment log and must land on a registry
whose :meth:`~repro.registry.SketchRegistry.to_frame` output is bit-identical
to the pre-crash server's (the mergeability claim of paper Section 2.1,
extended across process restarts).  It holds:

* the **merged registry** — every accepted frame folded into one
  :class:`~repro.registry.SketchRegistry` (the all-time quantile surface);
* **windowed retention** — one registry per flush-interval bucket, bounded
  to the newest ``retention_intervals`` buckets, for "p99 over the last N
  intervals" queries without keeping unbounded history;
* the **deduplication table** — a per-host high-watermark (every 1-based
  sequence ``<= watermark`` was applied) plus a bounded set of
  out-of-order sequences above it, so a retransmitted ``(host,
  sequence)`` identity is applied at most once (clients get
  at-least-once delivery, state gets exactly-once application) while the
  table stays O(hosts), not O(frames ever applied): client sequences are
  monotonic per host, so the watermark absorbs the contiguous prefix and
  only in-flight reordering occupies memory.

The whole state round-trips through an opaque snapshot payload
(:meth:`ServiceState.to_snapshot` / :meth:`ServiceState.from_snapshot`)
that the segment log persists and CRC-checks; snapshot-then-replay is part
of the bit-exactness contract and is pinned by
``tests/test_service_recovery.py``.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.ddsketch import BaseDDSketch
from repro.exceptions import DeserializationError, IllegalArgumentError
from repro.registry import SketchRegistry
from repro.registry.series import TagsLike
from repro.serialization.encoding import (
    VarintReader,
    encode_varint,
    encode_zigzag,
)
from repro.service.protocol import PushEnvelope, decode_push_envelope

_SNAPSHOT_STATE_VERSION = 2

#: How many out-of-order sequences above a host's watermark the dedup table
#: tracks individually.  When a gap (a sequence a client burned without the
#: server ever seeing it) would let the set grow past this, the watermark
#: jumps over the oldest gap: a frame arriving more than this many identities
#: late is treated as a duplicate — the documented reordering bound.
DEDUP_WINDOW = 1024


class ServiceState:
    """Deduplicating, windowed aggregation state fed by push envelopes.

    Parameters
    ----------
    sketch_factory:
        Factory for sketches created on the *raw-value* path; decoded frame
        entries keep their own families (a UDDSketch series stays UDD).
    interval_length:
        Length of one retention bucket in seconds; an envelope lands in the
        bucket containing its ``interval_start``.
    retention_intervals:
        Number of newest interval buckets retained for windowed queries;
        ``0`` disables window tracking entirely (the merged registry still
        accumulates everything).
    dedup_window:
        Out-of-order bound of the dedup table: at most this many applied
        sequences above a host's watermark are tracked individually.
    """

    def __init__(
        self,
        sketch_factory: Optional[Callable[[], BaseDDSketch]] = None,
        interval_length: float = 1.0,
        retention_intervals: int = 64,
        dedup_window: int = DEDUP_WINDOW,
    ) -> None:
        if interval_length <= 0:
            raise IllegalArgumentError(
                f"interval_length must be positive, got {interval_length!r}"
            )
        if retention_intervals < 0:
            raise IllegalArgumentError(
                f"retention_intervals must be non-negative, got {retention_intervals!r}"
            )
        if dedup_window < 1:
            raise IllegalArgumentError(
                f"dedup_window must be positive, got {dedup_window!r}"
            )
        self._sketch_factory = sketch_factory
        self._interval_length = float(interval_length)
        self._retention_intervals = int(retention_intervals)
        self._dedup_window = int(dedup_window)
        self.registry = SketchRegistry(sketch_factory=sketch_factory)
        self._windows: Dict[int, SketchRegistry] = {}
        self._max_bucket: Optional[int] = None
        # Dedup table: per-host contiguous-prefix watermark + the applied
        # sequences above it (out-of-order arrivals awaiting their gap).
        self._seen_watermark: Dict[str, int] = {}
        self._seen_ahead: Dict[str, Set[int]] = {}
        self.frames_applied = 0
        self.duplicates_rejected = 0
        self.values_applied = 0.0

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #

    @property
    def interval_length(self) -> float:
        """Length of one retention bucket in seconds."""
        return self._interval_length

    @property
    def retention_intervals(self) -> int:
        """Number of newest interval buckets kept for windowed queries."""
        return self._retention_intervals

    def is_duplicate(self, host: str, sequence: int) -> bool:
        """Whether the ``(host, sequence)`` identity was already applied.

        Sequences are 1-based; everything at or below the host's watermark
        counts as applied (including sequences the watermark jumped over
        once the out-of-order window overflowed).
        """
        if sequence <= self._seen_watermark.get(host, 0):
            return True
        return sequence in self._seen_ahead.get(host, ())

    def _mark_applied(self, host: str, sequence: int) -> None:
        """Record one applied identity, compacting the contiguous prefix."""
        watermark = self._seen_watermark.get(host, 0)
        ahead = self._seen_ahead.get(host)
        if sequence == watermark + 1:
            watermark += 1
        else:
            if ahead is None:
                ahead = self._seen_ahead[host] = set()
            ahead.add(sequence)
        if ahead:
            while watermark + 1 in ahead:
                ahead.remove(watermark + 1)
                watermark += 1
            while len(ahead) > self._dedup_window:
                # A gap kept the set from draining (the sender burned a
                # sequence): jump the watermark over the oldest gap so the
                # table stays bounded.
                watermark = min(ahead)
                ahead.remove(watermark)
                while watermark + 1 in ahead:
                    ahead.remove(watermark + 1)
                    watermark += 1
            if not ahead:
                del self._seen_ahead[host]
        self._seen_watermark[host] = watermark

    def apply(self, envelope: PushEnvelope) -> int:
        """Fold one decoded envelope into the state; returns series merged.

        A duplicate ``(host, sequence)`` identity is counted and ignored
        (returns 0) — the exactly-once half of the delivery contract.
        Raises :class:`~repro.exceptions.DeserializationError` when the
        carried frame is corrupt; nothing is mutated in that case.
        """
        from repro.serialization.frame import decode_frame

        if self.is_duplicate(envelope.host, envelope.sequence):
            self.duplicates_rejected += 1
            return 0
        entries = decode_frame(envelope.frame)
        self._mark_applied(envelope.host, envelope.sequence)
        bucket = self._bucket_of(envelope.interval_start)
        window = self._window_for(bucket)
        for key, sketch in entries:
            self.values_applied += sketch.count
            self.registry.merge_series(key, sketch)
            if window is not None:
                # The decoded sketch is exclusively owned; the window bucket
                # adopts it while the merged registry kept a copy above.
                window.merge_series(key, sketch, copy=False)
        self.frames_applied += 1
        return len(entries)

    def apply_envelope_bytes(self, payload: bytes) -> int:
        """Decode a serialized envelope and apply it (the replay path)."""
        return self.apply(decode_push_envelope(payload))

    def _bucket_of(self, interval_start: float) -> int:
        return int(math.floor(interval_start / self._interval_length))

    def _window_for(self, bucket: int) -> Optional[SketchRegistry]:
        """The registry bucket an envelope lands in (``None`` when evicted)."""
        if self._retention_intervals == 0:
            return None
        if self._max_bucket is None or bucket > self._max_bucket:
            self._max_bucket = bucket
            self._evict()
        if bucket <= self._max_bucket - self._retention_intervals:
            return None  # older than the retention horizon: merged-only
        window = self._windows.get(bucket)
        if window is None:
            window = SketchRegistry(sketch_factory=self._sketch_factory)
            self._windows[bucket] = window
        return window

    def _evict(self) -> None:
        horizon = self._max_bucket - self._retention_intervals
        for bucket in [b for b in self._windows if b <= horizon]:
            del self._windows[bucket]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def total_count(self) -> float:
        """Total inserted weight across every series of the merged registry."""
        return self.registry.total_count()

    def to_frame(self) -> bytes:
        """The merged registry as one frame-v3 payload (sorted series order)."""
        return self.registry.to_frame()

    def window_buckets(self) -> List[int]:
        """Retained interval buckets, oldest first."""
        return sorted(self._windows)

    def quantiles(
        self,
        metric: str,
        quantiles: Sequence[float],
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> List[float]:
        """Quantiles over the merged state or a retained time window.

        Without window bounds the all-time merged registry answers; with
        bounds, the retained interval buckets intersecting
        ``[window_start, window_end)`` are merged on read.  Raises
        :class:`~repro.exceptions.EmptySketchError` when nothing matches —
        never ``KeyError`` (the repository-wide unknown-series contract).
        """
        source = self._windowed_registry(window_start, window_end)
        return source.quantiles(metric, quantiles, tags=tags, tag_filter=tag_filter)

    def threshold_query(
        self,
        metric: str,
        quantile: float,
        threshold: float,
        above: bool = True,
        tag_filter: TagsLike = None,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> "ThresholdResult":
        """Which stored series' quantile estimate passes ``threshold``?

        Runs a :class:`~repro.query.QueryEngine` sketch-bound threshold
        query (see :meth:`~repro.query.QueryEngine.threshold_query`) over
        the merged state or, with window bounds, over the retained interval
        buckets intersecting ``[window_start, window_end)``.
        """
        from repro.query import QueryEngine

        source = self._windowed_registry(window_start, window_end)
        engine = QueryEngine.over_registry(source)
        return engine.threshold_query(
            metric, quantile, threshold, above=above, tag_filter=tag_filter
        )

    def _windowed_registry(
        self, window_start: Optional[float], window_end: Optional[float]
    ) -> SketchRegistry:
        if window_start is None and window_end is None:
            return self.registry
        merged = SketchRegistry(sketch_factory=self._sketch_factory)
        low = self._bucket_of(window_start) if window_start is not None else None
        for bucket in self.window_buckets():
            if low is not None and bucket < low:
                continue
            # Bucket b covers [b*L, (b+1)*L); it intersects a half-open
            # [window_start, window_end) iff its own start is before the end.
            if window_end is not None and bucket * self._interval_length >= window_end:
                continue
            merged.merge(self._windows[bucket])
        return merged

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def to_snapshot(self) -> bytes:
        """Serialize the full state into one opaque snapshot payload."""
        parts = [encode_varint(_SNAPSHOT_STATE_VERSION)]
        merged = self.registry.to_frame()
        parts.append(encode_varint(len(merged)))
        parts.append(merged)
        parts.append(encode_zigzag(self._max_bucket if self._max_bucket is not None else 0))
        parts.append(encode_varint(1 if self._max_bucket is not None else 0))
        parts.append(encode_varint(len(self._windows)))
        for bucket in self.window_buckets():
            frame = self._windows[bucket].to_frame()
            parts.append(encode_zigzag(bucket))
            parts.append(encode_varint(len(frame)))
            parts.append(frame)
        parts.append(encode_varint(len(self._seen_watermark)))
        for host in sorted(self._seen_watermark):
            host_bytes = host.encode("utf-8")
            parts.append(encode_varint(len(host_bytes)))
            parts.append(host_bytes)
            watermark = self._seen_watermark[host]
            parts.append(encode_varint(watermark))
            ahead = sorted(self._seen_ahead.get(host, ()))
            parts.append(encode_varint(len(ahead)))
            previous = watermark
            for sequence in ahead:
                parts.append(encode_varint(sequence - previous))
                previous = sequence
        parts.append(encode_varint(self.frames_applied))
        parts.append(encode_varint(self.duplicates_rejected))
        parts.append(struct.pack("<d", self.values_applied))
        return b"".join(parts)

    @classmethod
    def from_snapshot(
        cls,
        payload: bytes,
        sketch_factory: Optional[Callable[[], BaseDDSketch]] = None,
        interval_length: float = 1.0,
        retention_intervals: int = 64,
        dedup_window: int = DEDUP_WINDOW,
    ) -> "ServiceState":
        """Rebuild a state from :meth:`to_snapshot` output.

        Raises :class:`~repro.exceptions.DeserializationError` for any
        malformed payload (the snapshot file's CRC catches disk corruption
        first; this guards the structure itself).
        """
        state = cls(
            sketch_factory=sketch_factory,
            interval_length=interval_length,
            retention_intervals=retention_intervals,
            dedup_window=dedup_window,
        )
        reader = VarintReader(bytes(payload))
        try:
            version = reader.read_varint()
            if version != _SNAPSHOT_STATE_VERSION:
                raise DeserializationError(f"unsupported state snapshot version {version}")
            merged_length = reader.read_varint()
            if merged_length > reader.remaining:
                raise DeserializationError("snapshot merged frame exceeds the payload")
            state.registry.merge_frame(reader.read_bytes(merged_length))
            max_bucket = reader.read_zigzag()
            has_bucket = reader.read_varint()
            state._max_bucket = max_bucket if has_bucket else None
            num_windows = reader.read_varint()
            if num_windows > reader.remaining:
                raise DeserializationError("snapshot window count exceeds the payload")
            for _ in range(num_windows):
                bucket = reader.read_zigzag()
                frame_length = reader.read_varint()
                if frame_length > reader.remaining:
                    raise DeserializationError("snapshot window frame exceeds the payload")
                window = SketchRegistry(sketch_factory=sketch_factory)
                window.merge_frame(reader.read_bytes(frame_length))
                state._windows[bucket] = window
            num_hosts = reader.read_varint()
            if num_hosts > reader.remaining:
                raise DeserializationError("snapshot host count exceeds the payload")
            for _ in range(num_hosts):
                host_length = reader.read_varint()
                if host_length > reader.remaining:
                    raise DeserializationError("snapshot host name exceeds the payload")
                try:
                    host = reader.read_bytes(host_length).decode("utf-8")
                except UnicodeDecodeError as error:
                    raise DeserializationError("snapshot host is not valid UTF-8") from error
                watermark = reader.read_varint()
                num_ahead = reader.read_varint()
                if num_ahead > reader.remaining + 1:
                    raise DeserializationError("snapshot sequence count exceeds the payload")
                ahead: Set[int] = set()
                current = watermark
                for _ in range(num_ahead):
                    delta = reader.read_varint()
                    if delta < 1:
                        raise DeserializationError(
                            "snapshot dedup sequences are not strictly increasing"
                        )
                    current += delta
                    ahead.add(current)
                state._seen_watermark[host] = watermark
                if ahead:
                    state._seen_ahead[host] = ahead
            state.frames_applied = reader.read_varint()
            state.duplicates_rejected = reader.read_varint()
            tail = reader.read_bytes(8)
            state.values_applied = struct.unpack("<d", tail)[0]
            if not reader.exhausted:
                raise DeserializationError(
                    f"{reader.remaining} trailing bytes after the state snapshot"
                )
        except DeserializationError:
            raise
        except (ValueError, TypeError, KeyError) as error:
            raise DeserializationError(f"malformed state snapshot: {error}") from error
        return state

    def stats(self) -> Dict[str, float]:
        """Counters describing the state (mirrored by the STATS wire op)."""
        return {
            "num_series": float(self.registry.num_series),
            "total_count": self.total_count(),
            "frames_applied": float(self.frames_applied),
            "duplicates_rejected": float(self.duplicates_rejected),
            "values_applied": self.values_applied,
            "window_buckets": float(len(self._windows)),
        }

    def __repr__(self) -> str:
        return (
            f"ServiceState(num_series={self.registry.num_series}, "
            f"frames_applied={self.frames_applied}, "
            f"windows={len(self._windows)})"
        )
