"""Crash-recoverable append-only segment log with compacted snapshots.

The aggregation server persists every accepted push envelope before applying
it, so a crashed or restarted process replays to a bit-exact copy of its
pre-crash state (full mergeability makes replay order = append order
sufficient, paper Section 2.1).  The log is the classic write-ahead shape:

* **records** — each appended payload is framed as::

      magic    2 bytes   b"SG"
      length   4 bytes   unsigned little-endian, bytes of ``body``
      crc32    4 bytes   unsigned little-endian, CRC-32 of ``body``
      body     varint sequence + varint record type + payload bytes

  The CRC covers the body, so a torn write (process killed mid-``write``)
  or a flipped bit is detected on replay instead of corrupting state.

* **segments** — records append to ``segment-<first-seq>.seg`` files;
  once a segment exceeds ``max_segment_bytes`` the next append rotates to
  a fresh file.  Segment files are immutable after rotation, which makes
  compaction a plain unlink.

* **snapshots** — ``write_snapshot`` persists an opaque state payload as
  ``snapshot-<applied-seq>.snap`` (CRC-checked, written via a temp file +
  rename so a crash never leaves a half-snapshot under the final name).
  Recovery loads the newest *valid* snapshot and replays only the records
  after it; ``compact`` then unlinks segments fully covered by a snapshot.

* **quarantine** — replay never throws away bytes silently and never lets
  corruption escape as ``IndexError``/``MemoryError``: a corrupt or torn
  region is copied to ``<segment>.quarantine-<offset>`` next to the log,
  recorded as a :class:`QuarantineEvent`, and replay resumes with the next
  segment (a later segment is strictly newer, so skipping the poisoned
  tail of one segment cannot reorder surviving records).  A restarted
  writer never appends into an existing segment file: a file whose head
  was torn (so the scan found nothing replayable in it) is retired to
  ``<segment>.quarantine-torn`` before its name is reused, so new
  acknowledged records are never written behind garbage that replay
  would quarantine wholesale.

The log is storage only: it does not interpret payloads.  The service layers
the push-envelope record format (:mod:`repro.service.protocol`) on top.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Tuple

from repro.exceptions import DeserializationError, IllegalArgumentError
from repro.serialization.encoding import decode_varint, encode_varint

RECORD_MAGIC = b"SG"
SNAPSHOT_MAGIC = b"DDSN"
SNAPSHOT_VERSION = 1

#: Record type carried by every service push record (the only type today;
#: the field exists so future record kinds can share the log).
RECORD_FRAME = 1

#: Ceiling on one record body.  Matches the wire-message ceiling: anything
#: larger is a corrupt length field, not data.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_RECORD_HEADER = struct.Struct("<2sII")

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".seg"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".snap"


@dataclass(frozen=True)
class LogRecord:
    """One replayed record: its global sequence number, type, and payload."""

    sequence: int
    record_type: int
    payload: bytes


@dataclass(frozen=True)
class QuarantineEvent:
    """One corrupt region detected during replay, preserved on disk."""

    segment: Path
    offset: int
    length: int
    reason: str
    quarantine_path: Optional[Path]


@dataclass
class ReplayStats:
    """Bookkeeping of one replay pass."""

    records: int = 0
    segments: int = 0
    quarantined: List[QuarantineEvent] = field(default_factory=list)


class SegmentLog:
    """Append-only CRC-checked segment log under one directory.

    Parameters
    ----------
    directory:
        Log directory, created if missing.  Segment, snapshot, and
        quarantine files all live here.
    max_segment_bytes:
        Size threshold after which the next append starts a new segment.
    fsync:
        When true, every append (and snapshot) is ``os.fsync``-ed so an
        acknowledged record survives an OS crash, not just a process
        crash.  Defaults to false: flush-to-OS on every append.
    file_factory:
        Callable with the signature of :func:`open` used to open segment
        files for writing — the fault-injection seam.  Tests substitute a
        factory returning torn-write file objects; production code leaves
        the default.
    """

    def __init__(
        self,
        directory,
        max_segment_bytes: int = 4 * 1024 * 1024,
        fsync: bool = False,
        file_factory: Optional[Callable] = None,
    ) -> None:
        if max_segment_bytes < 1:
            raise IllegalArgumentError(
                f"max_segment_bytes must be positive, got {max_segment_bytes!r}"
            )
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_segment_bytes = int(max_segment_bytes)
        self._fsync = bool(fsync)
        self._file_factory = file_factory or open
        self._writer = None
        self._writer_path: Optional[Path] = None
        self._writer_size = 0
        self.last_replay = ReplayStats()
        self._next_sequence = self._scan_next_sequence()

    # ------------------------------------------------------------------ #
    # Directory layout
    # ------------------------------------------------------------------ #

    @property
    def directory(self) -> Path:
        """The directory holding segments, snapshots, and quarantine files."""
        return self._directory

    @property
    def next_sequence(self) -> int:
        """Sequence number the next appended record will receive."""
        return self._next_sequence

    def segment_paths(self) -> List[Path]:
        """Segment files in first-sequence order."""
        segments = []
        for path in self._directory.iterdir():
            first = _parse_numbered(path.name, _SEGMENT_PREFIX, _SEGMENT_SUFFIX)
            if first is not None:
                segments.append((first, path))
        return [path for _, path in sorted(segments)]

    def snapshot_paths(self) -> List[Path]:
        """Snapshot files in applied-sequence order (oldest first)."""
        snapshots = []
        for path in self._directory.iterdir():
            applied = _parse_numbered(path.name, _SNAPSHOT_PREFIX, _SNAPSHOT_SUFFIX)
            if applied is not None:
                snapshots.append((applied, path))
        return [path for _, path in sorted(snapshots)]

    def _scan_next_sequence(self) -> int:
        """Highest sequence on disk + 1 (replaying tail segments as needed)."""
        highest = 0
        for _, path in self._latest_valid_snapshot_candidates():
            applied = _parse_numbered(path.name, _SNAPSHOT_PREFIX, _SNAPSHOT_SUFFIX)
            if applied is not None:
                highest = max(highest, applied)
        stats = ReplayStats()
        for record in self._replay_segments(after=highest, stats=stats, preserve=False):
            highest = max(highest, record.sequence)
        return highest + 1

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #

    def append(self, payload: bytes, record_type: int = RECORD_FRAME) -> int:
        """Durably append one record; returns its global sequence number.

        The record is flushed to the OS before returning (and fsynced when
        the log was opened with ``fsync=True``), so a caller that
        acknowledges after ``append`` never acknowledges a record a process
        crash can lose.
        """
        payload = bytes(payload)
        if len(payload) > MAX_RECORD_BYTES:
            raise IllegalArgumentError(
                f"record of {len(payload)} bytes exceeds the {MAX_RECORD_BYTES} limit"
            )
        sequence = self._next_sequence
        body = encode_varint(sequence) + encode_varint(int(record_type)) + payload
        record = _RECORD_HEADER.pack(RECORD_MAGIC, len(body), zlib.crc32(body)) + body
        writer = self._ensure_writer(sequence)
        writer.write(record)
        writer.flush()
        if self._fsync:
            os.fsync(writer.fileno())
        self._writer_size += len(record)
        self._next_sequence = sequence + 1
        if self._writer_size >= self._max_segment_bytes:
            self.rotate()
        return sequence

    def _ensure_writer(self, first_sequence: int):
        if self._writer is None:
            path = self._directory / f"{_SEGMENT_PREFIX}{first_sequence:016d}{_SEGMENT_SUFFIX}"
            self._retire_existing_segment(path)
            self._writer = self._file_factory(path, "ab")
            self._writer_path = path
            self._writer_size = 0
        return self._writer

    def _retire_existing_segment(self, path: Path) -> None:
        """Move aside any file already at ``path`` so appends start clean.

        The target name can only be occupied when the startup scan found no
        replayable record in it: a segment whose first record was torn by a
        crash (or whose every record is already covered by a snapshot).
        Appending to such a file would put freshly acknowledged records
        *behind* the corrupt region, and the next replay would quarantine
        them wholesale — silently losing acked data.  Instead the stale
        bytes are quarantined under ``<segment>.quarantine-torn`` (empty
        files are simply unlinked) and the segment is recreated from
        scratch.
        """
        try:
            size = path.stat().st_size
        except OSError:
            return  # nothing at the target name: the common case
        if size == 0:
            path.unlink()
            return
        quarantine = path.with_name(f"{path.name}.quarantine-torn")
        suffix = 0
        while quarantine.exists():
            suffix += 1
            quarantine = path.with_name(f"{path.name}.quarantine-torn-{suffix}")
        path.rename(quarantine)
        self.last_replay.quarantined.append(
            QuarantineEvent(
                segment=path,
                offset=0,
                length=size,
                reason="stale segment at the append target (torn first record)",
                quarantine_path=quarantine,
            )
        )

    def rotate(self) -> Optional[Path]:
        """Close the current segment so the next append starts a fresh one.

        Returns the closed segment's path (``None`` when nothing was open).
        """
        closed = self._writer_path
        if self._writer is not None:
            self._writer.close()
        self._writer = None
        self._writer_path = None
        self._writer_size = 0
        return closed

    def close(self) -> None:
        """Close the log (flushes and closes the open segment)."""
        self.rotate()

    def __enter__(self) -> "SegmentLog":
        """Context-manager entry: the log itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the open segment."""
        self.close()

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #

    def replay(self, after: int = 0) -> Iterator[LogRecord]:
        """Yield every intact record with ``sequence > after``, in order.

        Corrupt or torn regions are quarantined (preserved on disk as
        ``<segment>.quarantine-<offset>`` and recorded in
        :attr:`last_replay`), never raised as decoding errors: replay
        always terminates and yields exactly the trustworthy prefix of
        every segment.
        """
        self.rotate()  # flush + close so the reader sees every byte
        stats = ReplayStats()
        self.last_replay = stats
        yield from self._replay_segments(after=after, stats=stats, preserve=True)

    def _replay_segments(
        self, after: int, stats: ReplayStats, preserve: bool
    ) -> Iterator[LogRecord]:
        previous_sequence = after
        for path in self.segment_paths():
            stats.segments += 1
            data = path.read_bytes()
            offset = 0
            while offset < len(data):
                record, next_offset, reason = _read_record(data, offset)
                if record is None:
                    self._quarantine(path, offset, data[offset:], reason, stats, preserve)
                    break
                if record.sequence <= previous_sequence and record.sequence <= after:
                    # An old record already covered by the snapshot: skip.
                    offset = next_offset
                    continue
                if record.sequence <= previous_sequence:
                    # Sequence went backwards past the replay frontier: the
                    # region cannot be trusted (duplicated tail after a
                    # copy-restore, or corruption the CRC cannot see).
                    self._quarantine(
                        path,
                        offset,
                        data[offset:],
                        f"sequence {record.sequence} not after {previous_sequence}",
                        stats,
                        preserve,
                    )
                    break
                previous_sequence = record.sequence
                stats.records += 1
                yield record
                offset = next_offset

    def _quarantine(
        self,
        segment: Path,
        offset: int,
        chunk: bytes,
        reason: str,
        stats: ReplayStats,
        preserve: bool,
    ) -> None:
        quarantine_path: Optional[Path] = None
        if preserve and chunk:
            quarantine_path = segment.with_name(f"{segment.name}.quarantine-{offset}")
            if not quarantine_path.exists():
                quarantine_path.write_bytes(chunk)
        stats.quarantined.append(
            QuarantineEvent(
                segment=segment,
                offset=offset,
                length=len(chunk),
                reason=reason,
                quarantine_path=quarantine_path,
            )
        )

    # ------------------------------------------------------------------ #
    # Snapshots + compaction
    # ------------------------------------------------------------------ #

    def write_snapshot(self, payload: bytes, applied: int) -> Path:
        """Persist a compacted state snapshot covering records ``<= applied``.

        The snapshot is CRC-framed and written via a temporary file +
        atomic rename, so recovery either sees a fully valid snapshot or
        none under the final name.  Returns the snapshot path.
        """
        if applied < 0:
            raise IllegalArgumentError(f"applied must be non-negative, got {applied!r}")
        body = (
            SNAPSHOT_MAGIC
            + encode_varint(SNAPSHOT_VERSION)
            + encode_varint(int(applied))
            + encode_varint(len(payload))
            + bytes(payload)
        )
        framed = body + struct.pack("<I", zlib.crc32(body))
        path = self._directory / f"{_SNAPSHOT_PREFIX}{applied:016d}{_SNAPSHOT_SUFFIX}"
        temp = path.with_suffix(".tmp")
        temp.write_bytes(framed)
        if self._fsync:
            fd = os.open(temp, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        os.replace(temp, path)
        return path

    def latest_snapshot(self) -> Optional[Tuple[int, bytes]]:
        """Newest valid snapshot as ``(applied_sequence, payload)``.

        Corrupt snapshot files are quarantined (renamed to ``*.corrupt``)
        and the next-newest candidate is tried; returns ``None`` when no
        valid snapshot exists.
        """
        for applied, path in self._latest_valid_snapshot_candidates():
            payload = _read_snapshot(path, applied)
            if payload is not None:
                return applied, payload
            path.rename(path.with_name(path.name + ".corrupt"))
        return None

    def _latest_valid_snapshot_candidates(self) -> List[Tuple[int, Path]]:
        candidates = []
        for path in self._directory.iterdir():
            applied = _parse_numbered(path.name, _SNAPSHOT_PREFIX, _SNAPSHOT_SUFFIX)
            if applied is not None:
                candidates.append((applied, path))
        return sorted(candidates, reverse=True)

    def compact(self, applied: int) -> List[Path]:
        """Unlink segments fully covered by a snapshot at ``applied``.

        A segment is removable when every record it holds has
        ``sequence <= applied`` — i.e. the *next* segment starts at or
        before ``applied + 1``.  The open tail segment is never removed.
        Returns the deleted paths.
        """
        segments = self.segment_paths()
        removed: List[Path] = []
        for index, path in enumerate(segments[:-1]):
            next_first = _parse_numbered(
                segments[index + 1].name, _SEGMENT_PREFIX, _SEGMENT_SUFFIX
            )
            if next_first is not None and next_first <= applied + 1:
                if path == self._writer_path:
                    continue
                path.unlink()
                removed.append(path)
        return removed


def _parse_numbered(name: str, prefix: str, suffix: str) -> Optional[int]:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    digits = name[len(prefix) : len(name) - len(suffix)]
    if not digits.isdigit():
        return None
    return int(digits)


def _read_record(data: bytes, offset: int):
    """Parse one record at ``offset``; returns ``(record, next_offset, reason)``.

    On success ``record`` is a :class:`LogRecord` and ``reason`` is ``None``;
    on a torn or corrupt region ``record`` is ``None`` and ``reason`` says
    why (the caller quarantines from ``offset`` to the segment end).
    """
    header_size = _RECORD_HEADER.size
    if offset + header_size > len(data):
        return None, offset, f"torn record header ({len(data) - offset} trailing bytes)"
    magic, length, crc = _RECORD_HEADER.unpack_from(data, offset)
    if magic != RECORD_MAGIC:
        return None, offset, "record magic mismatch"
    if length > MAX_RECORD_BYTES:
        return None, offset, f"record length {length} exceeds the sanity limit"
    body_start = offset + header_size
    if body_start + length > len(data):
        return None, offset, f"torn record body ({len(data) - body_start} of {length} bytes)"
    body = data[body_start : body_start + length]
    if zlib.crc32(body) != crc:
        return None, offset, "record CRC mismatch"
    try:
        sequence, position = decode_varint(body, 0)
        record_type, position = decode_varint(body, position)
    except DeserializationError as error:
        return None, offset, f"record body is malformed: {error}"
    return (
        LogRecord(sequence=sequence, record_type=record_type, payload=body[position:]),
        body_start + length,
        None,
    )


def _read_snapshot(path: Path, expected_applied: int) -> Optional[bytes]:
    """Validate one snapshot file; returns its payload or ``None`` if corrupt."""
    try:
        framed = path.read_bytes()
    except OSError:
        return None
    if len(framed) < len(SNAPSHOT_MAGIC) + 4 or framed[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        return None
    body, crc_bytes = framed[:-4], framed[-4:]
    if zlib.crc32(body) != struct.unpack("<I", crc_bytes)[0]:
        return None
    try:
        version, position = decode_varint(body, len(SNAPSHOT_MAGIC))
        applied, position = decode_varint(body, position)
        length, position = decode_varint(body, position)
    except DeserializationError:
        return None
    if version != SNAPSHOT_VERSION or applied != expected_applied:
        return None
    if position + length != len(body):
        return None
    return body[position : position + length]
