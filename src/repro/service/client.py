"""Blocking client of the aggregation service.

:class:`ServiceClient` is the agent-side half of the cross-process
transport: it connects to one :class:`~repro.service.server.AggregationServer`
over TCP, wraps frame-v3 payloads in push envelopes
(:mod:`repro.service.protocol`), and assigns per-host sequence numbers so
the server can deduplicate retransmissions.  The delivery contract:

* **at-least-once on the wire** — :meth:`ServiceClient.push_frame` retries
  a timed-out push with the *same* sequence number;
* **exactly-once in state** — the server applies each ``(host, sequence)``
  identity at most once, so retries (and crash/replay cycles) never double
  count.

The client is also a good citizen of a struggling server:

* retries use **exponential backoff with decorrelated jitter** (a fleet of
  agents de-synchronizes instead of thundering back in lockstep), and an
  ``OVERLOADED`` reply's ``retry_after`` hint sets the floor of the next
  delay;
* an optional **per-call deadline budget** bounds the total time one call
  may spend across connects, retries, and backoff sleeps;
* an optional **circuit breaker** opens after ``breaker_threshold``
  consecutive transport failures: calls then fail fast with
  :class:`~repro.exceptions.CircuitOpenError` (no socket I/O) until a
  cooldown elapses and a half-open ``PING`` probe proves the server back.

Error replies re-raise as the library's own exception types: a query against
an unknown metric raises :class:`~repro.exceptions.EmptySketchError` exactly
as the in-process registry would — the service boundary does not change the
error contract.  Load shedding surfaces as
:class:`~repro.exceptions.ServiceOverloadedError` (after retries are
exhausted), never as a silent hang.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import (
    CircuitOpenError,
    DeserializationError,
    EmptySketchError,
    IllegalArgumentError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    UnequalSketchParametersError,
)
from repro.registry.series import TagsLike
from repro.service import protocol

_ERROR_KINDS = {
    "EmptySketchError": EmptySketchError,
    "IllegalArgumentError": IllegalArgumentError,
    "DeserializationError": DeserializationError,
    "UnequalSketchParametersError": UnequalSketchParametersError,
}

#: Exceptions that mean "the transport failed", as opposed to the server
#: rejecting the request: these are retried, count toward the circuit
#: breaker, and never carry application meaning.
_TRANSPORT_ERRORS = (socket.timeout, ConnectionError, OSError, DeserializationError)


class ServiceClient:
    """A blocking, thread-safe connection to the aggregation server.

    Parameters
    ----------
    host / port:
        The server's listen address (``server.address`` of a started
        :class:`~repro.service.server.AggregationServer`).
    timeout:
        Socket timeout in seconds for each request/response round trip.
    retries:
        How many times a failed push is retransmitted (with the same
        sequence number, so the server's dedup keeps it exactly-once).
    deadline:
        Overall per-call time budget in seconds, covering every connect,
        attempt, and backoff sleep of one :meth:`push_frame` (or other
        retried call).  ``None`` (the default) bounds each attempt only by
        ``timeout``.
    backoff_base / backoff_cap:
        Decorrelated-jitter retry delays: each sleep is drawn uniformly
        from ``[backoff_base, 3 * previous]`` and clamped to
        ``backoff_cap`` — and never below the ``retry_after`` hint of an
        ``OVERLOADED`` reply.
    breaker_threshold:
        Consecutive transport failures that open the circuit breaker;
        ``0`` (the default) disables the breaker entirely.
    breaker_cooldown:
        Seconds the breaker stays open before a half-open ``PING`` probe
        is allowed to test the server.
    rng:
        Source of jitter (``random.Random``); injectable for deterministic
        tests.

    One socket serves all calls; a lock serializes request/response pairs so
    the client may be shared across producer threads.  The connection is
    dialed lazily on the first request, so constructing a client while the
    server is down is not an error — the first call (not the constructor)
    reports the outage.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 2,
        deadline: Optional[float] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        breaker_threshold: int = 0,
        breaker_cooldown: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if retries < 0:
            raise IllegalArgumentError(f"retries must be non-negative, got {retries!r}")
        if deadline is not None and deadline <= 0:
            raise IllegalArgumentError(f"deadline must be positive or None, got {deadline!r}")
        if backoff_base <= 0 or backoff_cap < backoff_base:
            raise IllegalArgumentError(
                f"backoff range [{backoff_base!r}, {backoff_cap!r}] is not valid"
            )
        if breaker_threshold < 0:
            raise IllegalArgumentError(
                f"breaker_threshold must be non-negative, got {breaker_threshold!r}"
            )
        if breaker_cooldown <= 0:
            raise IllegalArgumentError(
                f"breaker_cooldown must be positive, got {breaker_cooldown!r}"
            )
        self._address = (host, int(port))
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._deadline = None if deadline is None else float(deadline)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = float(breaker_cooldown)
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._sequences: Dict[str, int] = {}
        self._socket: Optional[socket.socket] = None
        self._consecutive_failures = 0
        self._breaker_open_until: Optional[float] = None
        self._counters: Dict[str, int] = {
            "retries": 0,
            "transport_failures": 0,
            "overloads": 0,
            "breaker_opens": 0,
            "breaker_fast_fails": 0,
        }

    def _connect(self) -> None:
        self._socket = socket.create_connection(self._address, timeout=self._timeout)
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self) -> None:
        """Close the connection (idempotent); the next request redials."""
        if self._socket is not None:
            try:
                self._socket.close()
            finally:
                self._socket = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    @property
    def counters(self) -> Dict[str, int]:
        """A snapshot of this client's resilience counters.

        Keys: ``retries`` (re-attempts after the first), ``transport_failures``,
        ``overloads`` (``OVERLOADED`` replies received), ``breaker_opens``, and
        ``breaker_fast_fails`` (calls refused while the breaker was open).
        """
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #

    def _wire_request(self, message_type: int, payload: bytes, timeout: float) -> Tuple[int, bytes]:
        """One socket-level round trip (connect lazily, send, read reply)."""
        if self._socket is None:
            self._connect()
        return protocol.request(self._socket, message_type, payload, timeout=timeout)

    def _request(self, message_type: int, payload: bytes, retry: bool) -> Dict[str, Any]:
        """One request/response round trip with backoff, deadline, breaker."""
        attempts = self._retries + 1 if retry else 1
        deadline_at = None if self._deadline is None else time.monotonic() + self._deadline
        last_error: Optional[Exception] = None
        with self._lock:
            self._check_breaker()
            backoff = self._backoff_base
            for attempt in range(attempts):
                if attempt:
                    self._counters["retries"] += 1
                remaining = self._remaining(deadline_at)
                if remaining is not None and remaining <= 0:
                    break
                attempt_timeout = (
                    self._timeout if remaining is None else min(self._timeout, remaining)
                )
                try:
                    reply_type, reply = self._wire_request(message_type, payload, attempt_timeout)
                except _TRANSPORT_ERRORS as error:
                    # Request payloads are encoded (and validated) before
                    # `_request` is entered, so a DeserializationError here
                    # means a garbled reply stream — a transport failure,
                    # retried like a dropped connection.  Application errors
                    # surface from `_unwrap` below, outside this handler, so
                    # a server-reported DeserializationError is never eaten
                    # by the retry loop.
                    last_error = error
                    self.close()
                    if self._record_failure():
                        break  # the breaker just opened: stop hammering
                    backoff = self._sleep_backoff(backoff, deadline_at)
                    if backoff is None:
                        break
                    continue
                self._record_success()
                try:
                    return self._unwrap(reply_type, reply)
                except ServiceOverloadedError as error:
                    # The server is healthy but shedding: honor its
                    # retry_after hint as the floor of the next delay.  Not
                    # a transport failure — the breaker stays closed.
                    self._counters["overloads"] += 1
                    last_error = error
                    if attempt + 1 >= attempts:
                        raise
                    backoff = self._sleep_backoff(
                        backoff, deadline_at, minimum=error.retry_after
                    )
                    if backoff is None:
                        break
                    continue
        if isinstance(last_error, ServiceOverloadedError):
            raise last_error
        raise ServiceError(
            f"request to {self._address[0]}:{self._address[1]} failed "
            f"after {attempts} attempt(s): {last_error}"
        ) from last_error

    def _remaining(self, deadline_at: Optional[float]) -> Optional[float]:
        return None if deadline_at is None else deadline_at - time.monotonic()

    def _sleep_backoff(
        self, previous: float, deadline_at: Optional[float], minimum: float = 0.0
    ) -> Optional[float]:
        """Sleep one decorrelated-jitter delay; ``None`` when it would bust the deadline."""
        delay = min(self._backoff_cap, self._rng.uniform(self._backoff_base, previous * 3))
        delay = max(delay, float(minimum))
        remaining = self._remaining(deadline_at)
        if remaining is not None and delay >= remaining:
            return None
        time.sleep(delay)
        return delay

    # -- circuit breaker ------------------------------------------------ #

    def _record_failure(self) -> bool:
        """Count one transport failure; True when it just opened the breaker."""
        self._counters["transport_failures"] += 1
        self._consecutive_failures += 1
        if (
            self._breaker_threshold
            and self._consecutive_failures >= self._breaker_threshold
            and self._breaker_open_until is None
        ):
            self._breaker_open_until = time.monotonic() + self._breaker_cooldown
            self._counters["breaker_opens"] += 1
            return True
        return False

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._breaker_open_until = None

    def _check_breaker(self) -> None:
        """Fail fast while the breaker is open; probe half-open after cooldown."""
        if self._breaker_open_until is None:
            return
        now = time.monotonic()
        if now < self._breaker_open_until:
            self._counters["breaker_fast_fails"] += 1
            raise CircuitOpenError(
                f"circuit breaker to {self._address[0]}:{self._address[1]} is open "
                f"for another {self._breaker_open_until - now:.2f}s"
            )
        # Half-open: one PING probe decides.  Any reply — even OVERLOADED —
        # proves the server is back; only a transport failure re-opens.
        try:
            reply_type, reply = self._wire_request(protocol.MSG_PING, b"", self._timeout)
            self._unwrap(reply_type, reply)
        except ServiceOverloadedError:
            pass
        except (ServiceError,) + _TRANSPORT_ERRORS as error:
            self.close()
            self._breaker_open_until = time.monotonic() + self._breaker_cooldown
            raise CircuitOpenError(
                f"half-open probe of {self._address[0]}:{self._address[1]} failed "
                f"({error}); breaker re-opened"
            ) from error
        self._record_success()

    @staticmethod
    def _unwrap(reply_type: int, reply: bytes) -> Dict[str, Any]:
        try:
            body = protocol.decode_json_body(reply)
        except DeserializationError as error:
            raise ServiceError(f"the server sent a garbled reply: {error}") from error
        if reply_type == protocol.MSG_OK:
            return body
        if reply_type == protocol.MSG_OVERLOADED:
            raise ServiceOverloadedError(
                body.get("message", "the server shed the request"),
                retry_after=body.get("retry_after", 0.0),
            )
        if reply_type == protocol.MSG_ERROR:
            kind = body.get("kind", "ServiceError")
            message = body.get("message", "the server rejected the request")
            raise _ERROR_KINDS.get(kind, ServiceError)(message)
        raise ServiceError(f"unexpected reply type 0x{reply_type:02x}")

    # ------------------------------------------------------------------ #
    # Pushes
    # ------------------------------------------------------------------ #

    def next_sequence(self, host: str) -> int:
        """The sequence number the next pushed frame for ``host`` will get."""
        with self._lock:
            return self._sequences.get(host, 0) + 1

    def build_envelope(
        self,
        frame: bytes,
        host: str,
        interval_start: float = 0.0,
        sequence: Optional[int] = None,
    ) -> bytes:
        """Encode a push envelope, reserving its per-host sequence number.

        The returned bytes carry a fixed ``(host, sequence)`` identity, so
        they may be pushed now (:meth:`push_envelope`), spooled to disk for
        later (:class:`~repro.service.FrameSpool`), or retransmitted any
        number of times — the server applies the identity at most once.
        """
        host = str(host)
        with self._lock:
            if sequence is None:
                sequence = self._sequences.get(host, 0) + 1
            self._sequences[host] = max(self._sequences.get(host, 0), int(sequence))
        return protocol.encode_push_envelope(
            frame, host=host, sequence=sequence, interval_start=interval_start
        )

    def push_envelope(self, envelope: bytes) -> Dict[str, Any]:
        """Push one already-encoded envelope (see :meth:`build_envelope`)."""
        return self._request(protocol.MSG_PUSH, bytes(envelope), retry=True)

    def push_frame(
        self,
        frame: bytes,
        host: str,
        interval_start: float = 0.0,
        sequence: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Push one frame-v3 payload; returns the server's acknowledgement.

        ``sequence`` defaults to a per-host counter maintained by this
        client; pass it explicitly to retransmit a specific identity or to
        coordinate sequences across client instances.  The counter is
        reserved under the client lock *before* the send, so concurrent
        same-host pushes never share an identity, and a push that exhausts
        its retries burns its sequence — the server may have applied the
        frame without the ACK arriving, so reusing that identity for a
        *different* frame would be silently deduplicated away.  The
        acknowledgement carries ``duplicate: True`` when the server had
        already applied this ``(host, sequence)``.
        """
        envelope = self.build_envelope(
            frame, host=host, interval_start=interval_start, sequence=sequence
        )
        return self._request(protocol.MSG_PUSH, envelope, retry=True)

    def push_frames(
        self,
        frames: Iterable[Union[bytes, "FramePayloadLike"]],
        host: Optional[str] = None,
        interval_start: float = 0.0,
    ) -> List[Dict[str, Any]]:
        """Push several frames; returns one acknowledgement per frame.

        Accepts raw frame bytes (``host`` required) or
        :class:`~repro.monitoring.FramePayload`-shaped objects carrying
        their own ``host``/``interval_start``/``payload`` attributes — the
        output of :meth:`~repro.monitoring.MetricAgent.flush_shard_frames`.
        """
        acks = []
        for frame in frames:
            if isinstance(frame, (bytes, bytearray, memoryview)):
                if host is None:
                    raise IllegalArgumentError("host is required when pushing raw frame bytes")
                acks.append(self.push_frame(bytes(frame), host=host, interval_start=interval_start))
            else:
                acks.append(
                    self.push_frame(
                        frame.payload,
                        host=frame.host,
                        interval_start=frame.interval_start,
                    )
                )
        return acks

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query_quantiles(
        self,
        metric: str,
        quantiles: Sequence[float],
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Quantiles of a metric on the server (merged or windowed).

        Mirrors :meth:`repro.registry.SketchRegistry.quantiles`: ``tags``
        addresses one exact series, ``tag_filter`` the merge of matching
        series, neither the whole metric.  Raises
        :class:`~repro.exceptions.EmptySketchError` when nothing matches.
        """
        body: Dict[str, Any] = {
            "metric": metric,
            "quantiles": [float(quantile) for quantile in quantiles],
        }
        if tags is not None:
            body["tags"] = dict(tags) if not isinstance(tags, str) else tags
        if tag_filter is not None:
            body["tag_filter"] = dict(tag_filter) if not isinstance(tag_filter, str) else tag_filter
        if window_start is not None:
            body["window_start"] = float(window_start)
        if window_end is not None:
            body["window_end"] = float(window_end)
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        return self._request(protocol.MSG_QUERY, payload, retry=False)

    def query_threshold(
        self,
        metric: str,
        quantile: float,
        threshold: float,
        above: bool = True,
        tag_filter: TagsLike = None,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Which series' ``quantile`` estimate passes ``threshold`` on the server?

        The wire form of :meth:`repro.query.QueryEngine.threshold_query`:
        the server prunes its series population from cheap sketch bounds and
        scans only the stragglers.  The reply carries the matching series
        (string form), the population size, and the prune rate.
        """
        body: Dict[str, Any] = {
            "metric": metric,
            "quantiles": [float(quantile)],
            "threshold": float(threshold),
        }
        if not above:
            body["below"] = True
        if tag_filter is not None:
            body["tag_filter"] = dict(tag_filter) if not isinstance(tag_filter, str) else tag_filter
        if window_start is not None:
            body["window_start"] = float(window_start)
        if window_end is not None:
            body["window_end"] = float(window_end)
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        return self._request(protocol.MSG_QUERY, payload, retry=False)

    def stats(self) -> Dict[str, Any]:
        """The server's counters (series, counts, dedup, bytes, log position)."""
        return self._request(protocol.MSG_STATS, b"", retry=False)

    def ping(self) -> bool:
        """Round-trip liveness check; ``False`` on any failure, never raises.

        A dead, unreachable, or breaker-isolated server answers ``False``
        instead of raising :class:`~repro.exceptions.ServiceError` — a
        liveness probe that throws is just a slower way of saying no.
        """
        try:
            return self._request(protocol.MSG_PING, b"", retry=False).get("status") == "ok"
        except ServiceError:
            return False

    def snapshot(self) -> Dict[str, Any]:
        """Ask the server to write a compacted snapshot now."""
        return self._request(protocol.MSG_SNAPSHOT, b"", retry=False)

    def __repr__(self) -> str:
        return f"ServiceClient(address={self._address[0]}:{self._address[1]})"
