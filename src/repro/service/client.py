"""Blocking client of the aggregation service.

:class:`ServiceClient` is the agent-side half of the cross-process
transport: it connects to one :class:`~repro.service.server.AggregationServer`
over TCP, wraps frame-v3 payloads in push envelopes
(:mod:`repro.service.protocol`), and assigns per-host sequence numbers so
the server can deduplicate retransmissions.  The delivery contract:

* **at-least-once on the wire** — :meth:`ServiceClient.push_frame` retries
  a timed-out push with the *same* sequence number;
* **exactly-once in state** — the server applies each ``(host, sequence)``
  identity at most once, so retries (and crash/replay cycles) never double
  count.

Error replies re-raise as the library's own exception types: a query against
an unknown metric raises :class:`~repro.exceptions.EmptySketchError` exactly
as the in-process registry would — the service boundary does not change the
error contract.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import (
    DeserializationError,
    EmptySketchError,
    IllegalArgumentError,
    ReproError,
    ServiceError,
    UnequalSketchParametersError,
)
from repro.registry.series import TagsLike
from repro.service import protocol

_ERROR_KINDS = {
    "EmptySketchError": EmptySketchError,
    "IllegalArgumentError": IllegalArgumentError,
    "DeserializationError": DeserializationError,
    "UnequalSketchParametersError": UnequalSketchParametersError,
}


class ServiceClient:
    """A blocking, thread-safe connection to the aggregation server.

    Parameters
    ----------
    host / port:
        The server's listen address (``server.address`` of a started
        :class:`~repro.service.server.AggregationServer`).
    timeout:
        Socket timeout in seconds for each request/response round trip.
    retries:
        How many times a timed-out push is retransmitted (with the same
        sequence number, so the server's dedup keeps it exactly-once).

    One socket serves all calls; a lock serializes request/response pairs so
    the client may be shared across producer threads.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0, retries: int = 2) -> None:
        if retries < 0:
            raise IllegalArgumentError(f"retries must be non-negative, got {retries!r}")
        self._address = (host, int(port))
        self._timeout = float(timeout)
        self._retries = int(retries)
        self._lock = threading.Lock()
        self._sequences: Dict[str, int] = {}
        self._socket: Optional[socket.socket] = None
        self._connect()

    def _connect(self) -> None:
        self._socket = socket.create_connection(self._address, timeout=self._timeout)
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._socket is not None:
            try:
                self._socket.close()
            finally:
                self._socket = None

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #

    def _request(self, message_type: int, payload: bytes, retry: bool) -> Dict[str, Any]:
        """One request/response round trip with reconnect-and-retry."""
        attempts = self._retries + 1 if retry else 1
        last_error: Optional[Exception] = None
        with self._lock:
            for attempt in range(attempts):
                try:
                    if self._socket is None:
                        self._connect()
                    reply_type, reply = protocol.request(
                        self._socket, message_type, payload, timeout=self._timeout
                    )
                except (socket.timeout, ConnectionError, OSError, DeserializationError) as error:
                    # Request payloads are encoded (and validated) before
                    # `_request` is entered, so a DeserializationError here
                    # means a garbled reply stream — a transport failure,
                    # retried like a dropped connection.  Application errors
                    # surface from `_unwrap` below, outside this handler, so
                    # a server-reported DeserializationError is never eaten
                    # by the retry loop.
                    last_error = error
                    self.close()
                    continue
                return self._unwrap(reply_type, reply)
        raise ServiceError(
            f"request to {self._address[0]}:{self._address[1]} failed "
            f"after {attempts} attempt(s): {last_error}"
        ) from last_error

    @staticmethod
    def _unwrap(reply_type: int, reply: bytes) -> Dict[str, Any]:
        try:
            body = protocol.decode_json_body(reply)
        except DeserializationError as error:
            raise ServiceError(f"the server sent a garbled reply: {error}") from error
        if reply_type == protocol.MSG_OK:
            return body
        if reply_type == protocol.MSG_ERROR:
            kind = body.get("kind", "ServiceError")
            message = body.get("message", "the server rejected the request")
            raise _ERROR_KINDS.get(kind, ServiceError)(message)
        raise ServiceError(f"unexpected reply type 0x{reply_type:02x}")

    # ------------------------------------------------------------------ #
    # Pushes
    # ------------------------------------------------------------------ #

    def next_sequence(self, host: str) -> int:
        """The sequence number the next pushed frame for ``host`` will get."""
        with self._lock:
            return self._sequences.get(host, 0) + 1

    def push_frame(
        self,
        frame: bytes,
        host: str,
        interval_start: float = 0.0,
        sequence: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Push one frame-v3 payload; returns the server's acknowledgement.

        ``sequence`` defaults to a per-host counter maintained by this
        client; pass it explicitly to retransmit a specific identity or to
        coordinate sequences across client instances.  The counter is
        reserved under the client lock *before* the send, so concurrent
        same-host pushes never share an identity, and a push that exhausts
        its retries burns its sequence — the server may have applied the
        frame without the ACK arriving, so reusing that identity for a
        *different* frame would be silently deduplicated away.  The
        acknowledgement carries ``duplicate: True`` when the server had
        already applied this ``(host, sequence)``.
        """
        host = str(host)
        with self._lock:
            if sequence is None:
                sequence = self._sequences.get(host, 0) + 1
            self._sequences[host] = max(self._sequences.get(host, 0), int(sequence))
        envelope = protocol.encode_push_envelope(
            frame, host=host, sequence=sequence, interval_start=interval_start
        )
        return self._request(protocol.MSG_PUSH, envelope, retry=True)

    def push_frames(
        self,
        frames: Iterable[Union[bytes, "FramePayloadLike"]],
        host: Optional[str] = None,
        interval_start: float = 0.0,
    ) -> List[Dict[str, Any]]:
        """Push several frames; returns one acknowledgement per frame.

        Accepts raw frame bytes (``host`` required) or
        :class:`~repro.monitoring.FramePayload`-shaped objects carrying
        their own ``host``/``interval_start``/``payload`` attributes — the
        output of :meth:`~repro.monitoring.MetricAgent.flush_shard_frames`.
        """
        acks = []
        for frame in frames:
            if isinstance(frame, (bytes, bytearray, memoryview)):
                if host is None:
                    raise IllegalArgumentError("host is required when pushing raw frame bytes")
                acks.append(self.push_frame(bytes(frame), host=host, interval_start=interval_start))
            else:
                acks.append(
                    self.push_frame(
                        frame.payload,
                        host=frame.host,
                        interval_start=frame.interval_start,
                    )
                )
        return acks

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query_quantiles(
        self,
        metric: str,
        quantiles: Sequence[float],
        tags: TagsLike = None,
        tag_filter: TagsLike = None,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Quantiles of a metric on the server (merged or windowed).

        Mirrors :meth:`repro.registry.SketchRegistry.quantiles`: ``tags``
        addresses one exact series, ``tag_filter`` the merge of matching
        series, neither the whole metric.  Raises
        :class:`~repro.exceptions.EmptySketchError` when nothing matches.
        """
        body: Dict[str, Any] = {
            "metric": metric,
            "quantiles": [float(quantile) for quantile in quantiles],
        }
        if tags is not None:
            body["tags"] = dict(tags) if not isinstance(tags, str) else tags
        if tag_filter is not None:
            body["tag_filter"] = dict(tag_filter) if not isinstance(tag_filter, str) else tag_filter
        if window_start is not None:
            body["window_start"] = float(window_start)
        if window_end is not None:
            body["window_end"] = float(window_end)
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        return self._request(protocol.MSG_QUERY, payload, retry=False)

    def stats(self) -> Dict[str, Any]:
        """The server's counters (series, counts, dedup, bytes, log position)."""
        return self._request(protocol.MSG_STATS, b"", retry=False)

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self._request(protocol.MSG_PING, b"", retry=False).get("status") == "ok"

    def snapshot(self) -> Dict[str, Any]:
        """Ask the server to write a compacted snapshot now."""
        return self._request(protocol.MSG_SNAPSHOT, b"", retry=False)

    def __repr__(self) -> str:
        return f"ServiceClient(address={self._address[0]}:{self._address[1]})"
