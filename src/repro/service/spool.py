"""Durable store-and-forward spool for push envelopes.

:class:`FrameSpool` is the agent-side outage buffer: when a push to the
aggregation server fails — transport error, exhausted retries, or an open
circuit breaker — the already-encoded push envelope is appended to a disk
spool instead of being dropped.  After the server recovers, :meth:`drain`
replays the spooled envelopes in arrival order and truncates what it pushed,
so an outage shorter than the spool's capacity loses nothing.

The spool reuses the segment log's CRC record framing
(:mod:`repro.service.segment_log`): every spooled envelope survives an agent
crash, torn tails are quarantined rather than poisoning the rest, and
eviction is a plain unlink of the oldest segment file.  Capacity is a byte
budget (``max_bytes``): when the spool outgrows it, whole *oldest* segments
are evicted first and every evicted frame is **counted** in
:attr:`FrameSpool.frames_dropped` — data loss under a too-long outage is
deliberate, bounded, and observable, never silent.

Because spooled envelopes carry their fixed ``(host, sequence)`` identities
(reserved by :meth:`~repro.service.ServiceClient.build_envelope` at encode
time), a drain that dies halfway simply re-pushes the survivors next time
and the server's deduplication keeps state exactly-once.

Envelopes are spooled *verbatim*: a frame compressed with
:func:`repro.serialization.frame.compress_frame` keeps its compressed body
on disk (stretching the byte budget by the compression ratio) and the
server transparently decompresses it on replay — the spool format needed no
change for compressed frame v3.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.exceptions import IllegalArgumentError
from repro.service.segment_log import SegmentLog, _read_record

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".seg"


class FrameSpool:
    """A byte-budgeted disk spool of push envelopes, oldest-first evicted.

    Parameters
    ----------
    directory:
        Spool directory, created if missing (one spool per directory).
    max_bytes:
        Byte budget over all spool segments.  When an :meth:`offer` pushes
        the spool past it, the oldest closed segment files are evicted and
        their frames counted in :attr:`frames_dropped`.
    max_segment_bytes:
        Segment rotation threshold; smaller segments make eviction
        finer-grained.  Clamped to ``max_bytes``.
    fsync:
        When true every spooled envelope is fsync-ed (survives an OS
        crash, not just an agent crash).

    All methods are thread-safe; one lock serializes offers, drains, and
    counter reads, so a multi-threaded agent may share one spool.
    """

    def __init__(
        self,
        directory,
        max_bytes: int = 16 * 1024 * 1024,
        max_segment_bytes: int = 256 * 1024,
        fsync: bool = False,
    ) -> None:
        if max_bytes < 1:
            raise IllegalArgumentError(f"max_bytes must be positive, got {max_bytes!r}")
        if max_segment_bytes < 1:
            raise IllegalArgumentError(
                f"max_segment_bytes must be positive, got {max_segment_bytes!r}"
            )
        self._max_bytes = int(max_bytes)
        self._log = SegmentLog(
            directory,
            max_segment_bytes=min(int(max_segment_bytes), self._max_bytes),
            fsync=fsync,
        )
        self._lock = threading.Lock()
        #: Frames appended to the spool over this instance's lifetime.
        self.frames_spooled = 0
        #: Frames successfully pushed out by :meth:`drain`.
        self.frames_drained = 0
        #: Frames evicted (oldest-first) to stay inside ``max_bytes``.
        self.frames_dropped = 0
        #: Bytes of envelope payload evicted to stay inside ``max_bytes``.
        self.bytes_dropped = 0
        self._pending = self._count_pending()

    @property
    def directory(self) -> Path:
        """The directory holding the spool's segment files."""
        return self._log.directory

    @property
    def pending(self) -> int:
        """Frames currently on disk awaiting a drain."""
        with self._lock:
            return self._pending

    @property
    def pending_bytes(self) -> int:
        """Bytes currently on disk across all spool segments."""
        with self._lock:
            return self._total_bytes()

    @property
    def counters(self) -> Dict[str, int]:
        """A snapshot of the spool's counters (spooled/drained/dropped/pending)."""
        with self._lock:
            return {
                "frames_spooled": self.frames_spooled,
                "frames_drained": self.frames_drained,
                "frames_dropped": self.frames_dropped,
                "bytes_dropped": self.bytes_dropped,
                "pending": self._pending,
            }

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def offer(self, envelope: bytes) -> bool:
        """Spool one encoded push envelope; ``False`` when it was dropped.

        An envelope larger than the whole byte budget is dropped (and
        counted) immediately; otherwise it is durably appended and old
        segments are evicted as needed to stay inside ``max_bytes``.
        """
        data = bytes(envelope)
        with self._lock:
            if len(data) > self._max_bytes:
                self.frames_dropped += 1
                self.bytes_dropped += len(data)
                return False
            self._log.append(data)
            self.frames_spooled += 1
            self._pending += 1
            self._evict()
            return True

    def _evict(self) -> None:
        """Unlink oldest closed segments until the budget holds again."""
        while self._total_bytes() > self._max_bytes:
            segments = self._log.segment_paths()
            if len(segments) <= 1:
                # Only the active segment remains; evicting it would drop
                # the newest data.  It is bounded by the rotation threshold,
                # so the overshoot is at most one segment.
                break
            oldest = segments[0]
            size = oldest.stat().st_size
            dropped = self._count_records(oldest)
            oldest.unlink()
            self.frames_dropped += dropped
            self.bytes_dropped += size
            self._pending = max(0, self._pending - dropped)

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #

    def drain(
        self, push: Callable[[bytes], object], limit: Optional[int] = None
    ) -> int:
        """Replay spooled envelopes through ``push``; returns the count sent.

        ``push`` is called with each envelope's bytes in spool order
        (typically :meth:`ServiceClient.push_envelope
        <repro.service.ServiceClient.push_envelope>`).  Envelopes up to and
        including the last *successful* push are truncated from disk; if
        ``push`` raises, the exception propagates after truncation, and the
        next drain resumes — possibly re-pushing a few already-delivered
        envelopes, which the server deduplicates.  ``limit`` bounds how
        many envelopes one drain attempts.
        """
        with self._lock:
            pushed = 0
            drained_through = 0
            try:
                for record in self._log.replay():
                    if limit is not None and pushed >= limit:
                        break
                    push(record.payload)
                    drained_through = record.sequence
                    pushed += 1
                    self.frames_drained += 1
            finally:
                if drained_through:
                    self._truncate(drained_through)
                self._pending = self._count_pending()
            return pushed

    def _truncate(self, drained_through: int) -> None:
        """Unlink every segment whose records are all ``<= drained_through``."""
        self._log.rotate()
        segments = self._log.segment_paths()
        for index, path in enumerate(segments):
            if index + 1 < len(segments):
                next_first = _parse_first_sequence(segments[index + 1])
                covered = next_first is not None and next_first - 1 <= drained_through
            else:
                covered = self._log.next_sequence - 1 <= drained_through
            if covered:
                path.unlink()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    def _total_bytes(self) -> int:
        total = 0
        for path in self._log.segment_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _count_pending(self) -> int:
        return sum(self._count_records(path) for path in self._log.segment_paths())

    @staticmethod
    def _count_records(path: Path) -> int:
        """Intact records in one segment file (stops at a torn tail)."""
        try:
            data = path.read_bytes()
        except OSError:
            return 0
        offset = 0
        count = 0
        while offset < len(data):
            record, offset, _reason = _read_record(data, offset)
            if record is None:
                break
            count += 1
        return count

    def close(self) -> None:
        """Close the spool's open segment (idempotent)."""
        self._log.close()

    def __enter__(self) -> "FrameSpool":
        """Context-manager entry: the spool itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the spool."""
        self.close()

    def __repr__(self) -> str:
        return (
            f"FrameSpool(directory={str(self._log.directory)!r}, "
            f"pending={self._pending}, dropped={self.frames_dropped})"
        )


def _parse_first_sequence(path: Path) -> Optional[int]:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX) : len(name) - len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None
