"""The long-running aggregation server: asyncio sockets + write-ahead log.

:class:`AggregationServer` is the cross-process version of the paper's
"monitoring system" box (Section 1, Figure 1): any number of
:class:`~repro.monitoring.MetricAgent` processes push frame-v3 payloads over
the length-prefixed socket protocol (:mod:`repro.service.protocol`), the
server folds them into one :class:`~repro.service.state.ServiceState`
(merged registry + windowed retention + deduplication), and — when a data
directory is configured — persists every accepted envelope to a
crash-recoverable :class:`~repro.service.segment_log.SegmentLog` *before*
applying and acknowledging it.  The accept path is therefore::

    decode envelope -> validate frame -> dedup -> log.append -> state.apply -> ACK

A frame is acknowledged only after it is durable, so a crash between append
and ACK leaves the client unacknowledged: it retransmits, the server dedups,
and state converges to exactly-once application (at-least-once on the wire,
exactly-once in the registry).  On startup, :meth:`AggregationServer.recover`
loads the newest valid snapshot and replays the log tail, landing on a
registry whose ``to_frame()`` bytes are identical to the pre-crash server's
(full mergeability, Section 2.1 — pinned by ``tests/test_service_faults.py``
and ``tests/test_service_recovery.py``).

The event loop is single-threaded, so handlers mutate state without locks.
Durable appends (the only blocking I/O on the accept path) run on a
dedicated **single-writer executor thread**: the event loop stays responsive
— a concurrent ``PING`` answers immediately while a large fsync-ed push is
in flight — while appends stay strictly serialized, so apply order equals
log order and recovery stays bit-exact.  The server degrades gracefully
instead of queueing unboundedly under overload:

* an **admission gate** sheds pushes beyond ``max_inflight_pushes`` and
  connections beyond ``max_connections`` with an explicit ``OVERLOADED``
  reply carrying a ``retry_after`` hint (never a hang, never an unbounded
  queue);
* **per-connection deadlines** reap idle or slow-loris clients
  (``idle_timeout`` covers the whole read, header and payload) and
  slow-consumer clients that stop reading replies (``write_timeout``);
* **graceful drain shutdown** stops accepting, lets in-flight requests
  finish (bounded by ``drain_timeout``), then flushes the log — and writes
  a final compacted snapshot when automatic snapshots are enabled.

:func:`serve_in_thread` runs the whole server on a background thread for
tests, the CLI, and the load generator.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import (
    DeserializationError,
    EmptySketchError,
    IllegalArgumentError,
    ReproError,
    ServiceOverloadedError,
)
from repro.service import protocol
from repro.service.protocol import PushEnvelope, decode_push_envelope
from repro.service.segment_log import QuarantineEvent, SegmentLog
from repro.service.state import ServiceState


@dataclass
class RecoveryReport:
    """What one startup recovery pass found and rebuilt."""

    snapshot_applied: int = 0
    records_replayed: int = 0
    corrupt_records: int = 0
    quarantined: List[QuarantineEvent] = field(default_factory=list)


class AggregationServer:
    """Asyncio aggregation server with a crash-recoverable segment log.

    Parameters
    ----------
    data_dir:
        Directory for the segment log and snapshots.  ``None`` runs the
        server in-memory only (no durability, no recovery).
    host / port:
        Listen address; port ``0`` picks a free port (see :attr:`address`).
    sketch_factory / interval_length / retention_intervals:
        Forwarded to :class:`~repro.service.state.ServiceState`.
    max_segment_bytes / fsync:
        Forwarded to :class:`~repro.service.segment_log.SegmentLog`.
    snapshot_every:
        Write a compacted snapshot (and compact covered segments) after
        every N accepted frames; ``0`` disables automatic snapshots (the
        ``SNAPSHOT`` wire op still triggers one on demand).
    max_inflight_pushes:
        Admission gate: pushes arriving while this many are already being
        appended/applied are shed with an ``OVERLOADED`` reply instead of
        queueing unboundedly behind the log writer.
    max_connections:
        Concurrent-connection cap; a connection beyond it receives one
        ``OVERLOADED`` reply and is closed.
    idle_timeout:
        Per-connection read deadline in seconds: a client that sends no
        complete message within it (idle, or slow-loris dribbling header
        bytes) is disconnected.  ``None`` disables the deadline.
    write_timeout:
        Per-reply drain deadline in seconds: a client that stops reading
        replies (slow consumer) is disconnected instead of pinning buffer
        memory.  ``None`` disables the deadline.
    drain_timeout:
        Graceful-shutdown bound in seconds: stop accepting, wait this long
        for in-flight requests to finish, then cancel whatever remains.
        ``None`` waits indefinitely.
    overload_retry_after:
        The ``retry_after`` hint, in seconds, carried by ``OVERLOADED``
        replies.
    max_message_bytes:
        Inbound wire-message ceiling; a length prefix above it is rejected
        with a ``DeserializationError`` reply *before* any payload is read.
        Clamped to the protocol-wide limit.
    log_file_factory:
        Forwarded to the :class:`SegmentLog` ``file_factory`` seam — the
        fault-injection/throttling hook used by the chaos tests and the
        overload benchmark.
    """

    def __init__(
        self,
        data_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        sketch_factory=None,
        interval_length: float = 1.0,
        retention_intervals: int = 64,
        max_segment_bytes: int = 4 * 1024 * 1024,
        snapshot_every: int = 0,
        fsync: bool = False,
        max_inflight_pushes: int = 64,
        max_connections: int = 256,
        idle_timeout: Optional[float] = 300.0,
        write_timeout: Optional[float] = 30.0,
        drain_timeout: Optional[float] = 5.0,
        overload_retry_after: float = 0.05,
        max_message_bytes: int = protocol.MAX_MESSAGE_BYTES,
        log_file_factory=None,
    ) -> None:
        if snapshot_every < 0:
            raise IllegalArgumentError(
                f"snapshot_every must be non-negative, got {snapshot_every!r}"
            )
        if max_inflight_pushes < 1:
            raise IllegalArgumentError(
                f"max_inflight_pushes must be positive, got {max_inflight_pushes!r}"
            )
        if max_connections < 1:
            raise IllegalArgumentError(
                f"max_connections must be positive, got {max_connections!r}"
            )
        for name, value in (
            ("idle_timeout", idle_timeout),
            ("write_timeout", write_timeout),
            ("drain_timeout", drain_timeout),
        ):
            if value is not None and value <= 0:
                raise IllegalArgumentError(f"{name} must be positive or None, got {value!r}")
        if overload_retry_after < 0:
            raise IllegalArgumentError(
                f"overload_retry_after must be non-negative, got {overload_retry_after!r}"
            )
        if max_message_bytes < 1:
            raise IllegalArgumentError(
                f"max_message_bytes must be positive, got {max_message_bytes!r}"
            )
        self._host = host
        self._port = int(port)
        self._sketch_factory = sketch_factory
        self._interval_length = float(interval_length)
        self._retention_intervals = int(retention_intervals)
        self._snapshot_every = int(snapshot_every)
        self._max_inflight_pushes = int(max_inflight_pushes)
        self._max_connections = int(max_connections)
        self._idle_timeout = None if idle_timeout is None else float(idle_timeout)
        self._write_timeout = None if write_timeout is None else float(write_timeout)
        self._drain_timeout = None if drain_timeout is None else float(drain_timeout)
        self._overload_retry_after = float(overload_retry_after)
        self._max_message_bytes = min(int(max_message_bytes), protocol.MAX_MESSAGE_BYTES)
        self.state = ServiceState(
            sketch_factory=sketch_factory,
            interval_length=interval_length,
            retention_intervals=retention_intervals,
        )
        self.log: Optional[SegmentLog] = (
            SegmentLog(
                data_dir,
                max_segment_bytes=max_segment_bytes,
                fsync=fsync,
                file_factory=log_file_factory,
            )
            if data_dir is not None
            else None
        )
        self.last_recovery: Optional[RecoveryReport] = None
        self._last_applied_sequence = 0
        self._frames_since_snapshot = 0
        self._bytes_received = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._writers: set = set()
        self._draining = False
        # Single-writer executor for durable appends + snapshot persistence:
        # one thread, so log writes stay strictly ordered while the event
        # loop keeps serving pings and queries.
        self._log_writer: Optional[ThreadPoolExecutor] = None
        self._inflight_pushes = 0
        self._inflight_requests = 0
        self._inflight_identities: set = set()
        self._idle: Optional[asyncio.Event] = None
        self._snapshot_in_progress = False
        #: Pushes refused at the admission gate (OVERLOADED replies).
        self.pushes_shed = 0
        #: Connections refused at the connection cap (OVERLOADED + close).
        self.connections_shed = 0
        #: Connections disconnected by the read or write deadline.
        self.connections_reaped = 0

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> RecoveryReport:
        """Rebuild state from the newest snapshot plus the log tail.

        Intact records are applied in log order; records whose *payload*
        fails to decode despite a valid CRC (which disk corruption cannot
        produce, but a hostile log could) are counted as corrupt and
        skipped — recovery never raises on bad data and never loses intact
        records that follow it.
        """
        report = RecoveryReport()
        self.state = ServiceState(
            sketch_factory=self._sketch_factory,
            interval_length=self._interval_length,
            retention_intervals=self._retention_intervals,
        )
        self._last_applied_sequence = 0
        if self.log is None:
            self.last_recovery = report
            return report
        snapshot = self.log.latest_snapshot()
        if snapshot is not None:
            applied, payload = snapshot
            self.state = ServiceState.from_snapshot(
                payload,
                sketch_factory=self._sketch_factory,
                interval_length=self._interval_length,
                retention_intervals=self._retention_intervals,
            )
            report.snapshot_applied = applied
            self._last_applied_sequence = applied
        for record in self.log.replay(after=self._last_applied_sequence):
            try:
                self.state.apply_envelope_bytes(record.payload)
            except DeserializationError:
                report.corrupt_records += 1
                continue
            self._last_applied_sequence = record.sequence
            report.records_replayed += 1
        report.quarantined = list(self.log.last_replay.quarantined)
        self.last_recovery = report
        return report

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid once started)."""
        if self._server is None or not self._server.sockets:
            return (self._host, self._port)
        bound = self._server.sockets[0].getsockname()
        return (bound[0], bound[1])

    async def start(self) -> None:
        """Recover from the log (if any) and start accepting connections."""
        self.recover()
        self._stop_event = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        if self.log is not None and self._log_writer is None:
            self._log_writer = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="segment-log"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or :meth:`stop`) is called."""
        if self._stop_event is None:
            raise IllegalArgumentError("server is not started")
        await self._stop_event.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        """Signal the serving loop to shut down (safe from the event loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        """Stop accepting connections, drain in-flight work, close the log."""
        self.request_stop()
        await self._shutdown()

    async def _shutdown(self) -> None:
        # Graceful drain: stop accepting -> finish in-flight (bounded by
        # drain_timeout) -> cancel idle/stuck connections -> final flush,
        # plus a final compacted snapshot when auto-snapshots are on.
        if self._server is not None:
            self._server.close()
        drained = await self._drain_inflight()
        # Cooperative cancellation alone is not enough: on Python 3.11 a
        # cancel that lands just as a handler's awaited future completes is
        # swallowed by wait_for (the task keeps running with the cancel
        # request consumed), after which cancelling it again is a no-op.
        # The draining flag stops the read loop, aborting the transports
        # ends any in-progress read with EOF, and the bounded wait below is
        # the backstop so shutdown can never hang on a stuck handler.
        self._draining = True
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.transport.abort()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.wait(set(self._connections), timeout=5.0)
            self._connections.clear()
        if self._server is not None:
            # On Python >= 3.12 wait_closed() also waits for connection
            # handlers, so it must run *after* they were cancelled above.
            await self._server.wait_closed()
            self._server = None
        if self._log_writer is not None:
            self._log_writer.shutdown(wait=True)
            self._log_writer = None
        if self.log is not None:
            if drained and self._snapshot_every and self._frames_since_snapshot > 0:
                self._write_snapshot()
            self.log.close()

    async def _drain_inflight(self) -> bool:
        """Wait for in-flight requests to finish; False when the wait timed out."""
        if self._inflight_requests == 0 or self._idle is None:
            return True
        if self._drain_timeout is None:
            await self._idle.wait()
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self._drain_timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        """Serve one client connection until EOF, deadline, or a framing violation."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._writers.add(writer)
        try:
            if len(self._connections) > self._max_connections:
                # Over the connection cap: one explicit OVERLOADED reply,
                # then close — the client backs off and redials later.
                self.connections_shed += 1
                await self._send_best_effort(
                    writer,
                    self._overloaded_reply(
                        f"connection limit ({self._max_connections}) reached"
                    ),
                )
                return
            while True:
                if self._draining:
                    break  # shutdown: stop reading even if our cancel was lost
                try:
                    read = protocol.read_message(reader, max_bytes=self._max_message_bytes)
                    if self._idle_timeout is not None:
                        message_type, payload = await asyncio.wait_for(
                            read, timeout=self._idle_timeout
                        )
                    else:
                        message_type, payload = await read
                except asyncio.TimeoutError:
                    # Idle or slow-loris: no complete message within the
                    # read deadline — reap the connection.
                    self.connections_reaped += 1
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except asyncio.CancelledError:
                    break  # server shutdown: close the connection quietly
                except DeserializationError:
                    # The stream itself is unframed garbage (or claims an
                    # over-limit payload): reply once and drop the
                    # connection (resynchronization is impossible).
                    await self._send_best_effort(
                        writer,
                        protocol.encode_json_message(
                            protocol.MSG_ERROR,
                            {"status": "error", "kind": "DeserializationError",
                             "message": "malformed message framing"},
                        ),
                    )
                    break
                # The in-flight window spans dispatch *and* the reply write,
                # so the graceful drain only completes once acks are on the
                # wire — aborting the transports can never eat an ack.
                self._begin_request()
                try:
                    reply = await self._dispatch(message_type, payload)
                    writer.write(reply)
                    try:
                        if self._write_timeout is not None:
                            await asyncio.wait_for(
                                writer.drain(), timeout=self._write_timeout
                            )
                        else:
                            await writer.drain()
                    except asyncio.TimeoutError:
                        # Slow consumer: the client stopped reading replies.
                        self.connections_reaped += 1
                        break
                    except ConnectionError:
                        break
                finally:
                    self._end_request()
        finally:
            if task is not None:
                self._connections.discard(task)
            self._writers.discard(writer)
            # CancelledError is a BaseException: a task cancelled by shutdown
            # re-raises it from wait_closed(), so suppress it explicitly.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _send_best_effort(self, writer, reply: bytes) -> None:
        """Write one reply, swallowing transport errors (the peer may be gone)."""
        with contextlib.suppress(Exception):
            writer.write(reply)
            await writer.drain()

    def _overloaded_reply(self, message: str) -> bytes:
        return protocol.encode_json_message(
            protocol.MSG_OVERLOADED,
            {
                "status": "overloaded",
                "kind": "ServiceOverloadedError",
                "message": message,
                "retry_after": self._overload_retry_after,
            },
        )

    def _begin_request(self) -> None:
        self._inflight_requests += 1
        if self._idle is not None:
            self._idle.clear()

    def _end_request(self) -> None:
        self._inflight_requests -= 1
        if self._inflight_requests == 0 and self._idle is not None:
            self._idle.set()

    async def _dispatch(self, message_type: int, payload: bytes) -> bytes:
        """Route one request message to its handler; never raises."""
        try:
            if message_type == protocol.MSG_PUSH:
                return protocol.encode_json_message(
                    protocol.MSG_OK, await self._handle_push_async(payload)
                )
            if message_type == protocol.MSG_QUERY:
                body = protocol.decode_json_body(payload)
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_query(body))
            if message_type == protocol.MSG_STATS:
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_stats())
            if message_type == protocol.MSG_SNAPSHOT:
                return protocol.encode_json_message(
                    protocol.MSG_OK, await self._handle_snapshot_async()
                )
            if message_type == protocol.MSG_PING:
                return protocol.encode_json_message(protocol.MSG_OK, {"status": "ok"})
            raise IllegalArgumentError(f"unsupported request type 0x{message_type:02x}")
        except ServiceOverloadedError as error:
            return self._overloaded_reply(str(error))
        except ReproError as error:
            return protocol.encode_json_message(
                protocol.MSG_ERROR,
                {"status": "error", "kind": type(error).__name__, "message": str(error)},
            )
        except Exception as error:
            # A handler bug (or request shape the handlers did not
            # anticipate) must cost one ERROR reply, not the connection.
            return protocol.encode_json_message(
                protocol.MSG_ERROR,
                {
                    "status": "error",
                    "kind": "ServiceError",
                    "message": f"internal error: {type(error).__name__}: {error}",
                },
            )

    # ------------------------------------------------------------------ #
    # Push path
    # ------------------------------------------------------------------ #

    def _decode_push(self, payload: bytes) -> PushEnvelope:
        """Decode and validate one push payload, counting its bytes."""
        envelope = decode_push_envelope(payload, validate_frame=True)
        if envelope.sequence < 1:
            # Sequences are 1-based (the dedup watermark's zero state means
            # "nothing applied"); reject loudly rather than dedup silently.
            raise IllegalArgumentError(
                f"envelope sequence must be >= 1, got {envelope.sequence!r}"
            )
        self._bytes_received += len(payload)
        return envelope

    def _duplicate_ack(self, envelope: PushEnvelope) -> Dict[str, Any]:
        self.state.duplicates_rejected += 1
        return {
            "status": "ok",
            "duplicate": True,
            "host": envelope.host,
            "sequence": envelope.sequence,
            "series": 0,
        }

    def _apply_decoded(self, envelope: PushEnvelope) -> Dict[str, Any]:
        """Fold one decoded (and already persisted) envelope into state."""
        series = self.state.apply(envelope)
        self._frames_since_snapshot += 1
        return {
            "status": "ok",
            "duplicate": False,
            "host": envelope.host,
            "sequence": envelope.sequence,
            "series": series,
        }

    async def _handle_push_async(self, payload: bytes) -> Dict[str, Any]:
        """The wire push path: admission gate, dedup, executor append, apply.

        Appends run on the single-writer executor so one durable (possibly
        fsync-ed) push never stalls the event loop; because that executor
        has exactly one thread, append order is total, and because the loop
        resumes waiters in completion order, apply order equals append
        order — the bit-exact-replay invariant survives concurrency.
        """
        if self._inflight_pushes >= self._max_inflight_pushes:
            self.pushes_shed += 1
            raise ServiceOverloadedError(
                f"server at capacity ({self._max_inflight_pushes} in-flight pushes)",
                retry_after=self._overload_retry_after,
            )
        envelope = self._decode_push(payload)
        if self.state.is_duplicate(envelope.host, envelope.sequence):
            return self._duplicate_ack(envelope)
        if envelope.identity in self._inflight_identities:
            # A retransmission raced its own original (e.g. via a second
            # connection): answering "duplicate" would claim the original
            # was applied before it durably was, so ask for a retry instead.
            raise ServiceOverloadedError(
                f"push {envelope.identity} is already in flight",
                retry_after=self._overload_retry_after,
            )
        self._inflight_pushes += 1
        self._inflight_identities.add(envelope.identity)
        try:
            if self.log is not None:
                if self._log_writer is not None:
                    loop = asyncio.get_running_loop()
                    self._last_applied_sequence = await loop.run_in_executor(
                        self._log_writer, self.log.append, payload
                    )
                else:
                    self._last_applied_sequence = self.log.append(payload)
            ack = self._apply_decoded(envelope)
        finally:
            self._inflight_pushes -= 1
            self._inflight_identities.discard(envelope.identity)
        if (
            self._snapshot_every
            and self._frames_since_snapshot >= self._snapshot_every
            and not self._snapshot_in_progress
        ):
            await self._write_snapshot_async()
        return ack

    def _handle_push(self, payload: bytes) -> Dict[str, Any]:
        """Validate, dedup, persist, and apply one pushed envelope (sync path).

        The direct, single-threaded entry point used by tools and tests that
        drive a non-serving server; the wire path goes through
        :meth:`_handle_push_async` (admission gate + executor append).
        """
        envelope = self._decode_push(payload)
        if self.state.is_duplicate(envelope.host, envelope.sequence):
            return self._duplicate_ack(envelope)
        if self.log is not None:
            self._last_applied_sequence = self.log.append(payload)
        ack = self._apply_decoded(envelope)
        if self._snapshot_every and self._frames_since_snapshot >= self._snapshot_every:
            self._write_snapshot()
        return ack

    # ------------------------------------------------------------------ #
    # Queries / stats / snapshots
    # ------------------------------------------------------------------ #

    def _handle_query(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Answer a quantile query over the merged state or a time window."""
        try:
            metric = body["metric"]
            quantiles = body.get("quantiles", [0.5, 0.95, 0.99])
        except (KeyError, TypeError) as error:
            raise IllegalArgumentError(f"malformed query: {error}") from None
        if not isinstance(quantiles, list) or not quantiles:
            raise IllegalArgumentError("query quantiles must be a non-empty array")
        try:
            quantile_values = [float(quantile) for quantile in quantiles]
        except (TypeError, ValueError):
            raise IllegalArgumentError(
                f"query quantiles must be numbers, got {quantiles!r}"
            ) from None
        window_start = body.get("window_start")
        window_end = body.get("window_end")
        try:
            window_start = None if window_start is None else float(window_start)
            window_end = None if window_end is None else float(window_end)
        except (TypeError, ValueError):
            raise IllegalArgumentError(
                "query window_start/window_end must be numbers, got "
                f"{body.get('window_start')!r}/{body.get('window_end')!r}"
            ) from None
        if body.get("threshold") is not None:
            try:
                threshold = float(body["threshold"])
            except (TypeError, ValueError):
                raise IllegalArgumentError(
                    f"query threshold must be a number, got {body.get('threshold')!r}"
                ) from None
            result = self.state.threshold_query(
                str(metric),
                quantile_values[0],
                threshold,
                above=not bool(body.get("below", False)),
                tag_filter=body.get("tag_filter"),
                window_start=window_start,
                window_end=window_end,
            )
            return {
                "status": "ok",
                "metric": metric,
                "quantile": quantile_values[0],
                "threshold": threshold,
                "above": result.above,
                "matches": [str(key) for key in result.matches],
                "total_series": result.total_series,
                "scanned": len(result.scanned),
                "pruned": result.pruned,
                "prune_rate": result.prune_rate,
            }
        values = self.state.quantiles(
            str(metric),
            quantile_values,
            tags=body.get("tags"),
            tag_filter=body.get("tag_filter"),
            window_start=window_start,
            window_end=window_end,
        )
        return {"status": "ok", "metric": metric, "quantiles": quantiles, "values": values}

    def _handle_stats(self) -> Dict[str, Any]:
        """The server's counters (state stats + wire/log/overload bookkeeping)."""
        stats: Dict[str, Any] = {"status": "ok"}
        stats.update(self.state.stats())
        stats["bytes_received"] = self._bytes_received
        stats["durable"] = self.log is not None
        stats["last_applied_sequence"] = self._last_applied_sequence
        stats["pushes_shed"] = self.pushes_shed
        stats["connections_shed"] = self.connections_shed
        stats["connections_reaped"] = self.connections_reaped
        stats["open_connections"] = len(self._connections)
        stats["inflight_pushes"] = self._inflight_pushes
        stats["max_inflight_pushes"] = self._max_inflight_pushes
        stats["max_connections"] = self._max_connections
        return stats

    async def _handle_snapshot_async(self) -> Dict[str, Any]:
        """Write a compacted snapshot on demand (no-op without a log)."""
        if self.log is None:
            return {"status": "ok", "snapshot": None}
        path = await self._write_snapshot_async()
        return {"status": "ok", "snapshot": path.name}

    async def _write_snapshot_async(self):
        """Snapshot with the file I/O on the log-writer executor.

        The state payload is captured on the event loop (no concurrent
        mutation), then persisted on the same single-writer thread that
        runs appends, so the log never sees two writers.
        """
        payload = self.state.to_snapshot()
        applied = self._last_applied_sequence
        self._snapshot_in_progress = True
        try:
            if self._log_writer is not None:
                loop = asyncio.get_running_loop()
                path = await loop.run_in_executor(
                    self._log_writer, self._persist_snapshot, payload, applied
                )
            else:
                path = self._persist_snapshot(payload, applied)
        finally:
            self._snapshot_in_progress = False
        self._frames_since_snapshot = 0
        return path

    def _persist_snapshot(self, payload: bytes, applied: int):
        path = self.log.write_snapshot(payload, applied=applied)
        self.log.compact(applied)
        return path

    def _write_snapshot(self):
        path = self._persist_snapshot(self.state.to_snapshot(), self._last_applied_sequence)
        self._frames_since_snapshot = 0
        return path


class ServerThread:
    """A running :class:`AggregationServer` on a background event loop."""

    def __init__(self, server: AggregationServer, thread: threading.Thread, loop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of the running server."""
        return self.server.address

    def stop(self) -> None:
        """Stop the server (graceful drain) and join the background thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop the server."""
        self.stop()


def serve_in_thread(**kwargs) -> ServerThread:
    """Start an :class:`AggregationServer` on a daemon thread; returns a handle.

    Accepts the :class:`AggregationServer` constructor arguments.  The
    returned :class:`ServerThread` is a context manager whose ``address``
    is ready immediately (startup — including log recovery — completes
    before this function returns; a startup failure is re-raised here).
    """
    server = AggregationServer(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as error:  # startup failures surface to the caller
            failure.append(error)
            started.set()
            return
        started.set()
        await server.serve_until_stopped()

    def _runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="aggregation-server", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if failure:
        thread.join(timeout=5)
        raise failure[0]
    return ServerThread(server, thread, loop)
