"""The long-running aggregation server: asyncio sockets + write-ahead log.

:class:`AggregationServer` is the cross-process version of the paper's
"monitoring system" box (Section 1, Figure 1): any number of
:class:`~repro.monitoring.MetricAgent` processes push frame-v3 payloads over
the length-prefixed socket protocol (:mod:`repro.service.protocol`), the
server folds them into one :class:`~repro.service.state.ServiceState`
(merged registry + windowed retention + deduplication), and — when a data
directory is configured — persists every accepted envelope to a
crash-recoverable :class:`~repro.service.segment_log.SegmentLog` *before*
applying and acknowledging it.  The accept path is therefore::

    decode envelope -> validate frame -> dedup -> log.append -> state.apply -> ACK

A frame is acknowledged only after it is durable, so a crash between append
and ACK leaves the client unacknowledged: it retransmits, the server dedups,
and state converges to exactly-once application (at-least-once on the wire,
exactly-once in the registry).  On startup, :meth:`AggregationServer.recover`
loads the newest valid snapshot and replays the log tail, landing on a
registry whose ``to_frame()`` bytes are identical to the pre-crash server's
(full mergeability, Section 2.1 — pinned by ``tests/test_service_faults.py``
and ``tests/test_service_recovery.py``).

The event loop is single-threaded, so handlers mutate state without locks;
:func:`serve_in_thread` runs the whole server on a background thread for
tests, the CLI, and the load generator.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import (
    DeserializationError,
    EmptySketchError,
    IllegalArgumentError,
    ReproError,
)
from repro.service import protocol
from repro.service.protocol import PushEnvelope, decode_push_envelope
from repro.service.segment_log import QuarantineEvent, SegmentLog
from repro.service.state import ServiceState


@dataclass
class RecoveryReport:
    """What one startup recovery pass found and rebuilt."""

    snapshot_applied: int = 0
    records_replayed: int = 0
    corrupt_records: int = 0
    quarantined: List[QuarantineEvent] = field(default_factory=list)


class AggregationServer:
    """Asyncio aggregation server with a crash-recoverable segment log.

    Parameters
    ----------
    data_dir:
        Directory for the segment log and snapshots.  ``None`` runs the
        server in-memory only (no durability, no recovery).
    host / port:
        Listen address; port ``0`` picks a free port (see :attr:`address`).
    sketch_factory / interval_length / retention_intervals:
        Forwarded to :class:`~repro.service.state.ServiceState`.
    max_segment_bytes / fsync:
        Forwarded to :class:`~repro.service.segment_log.SegmentLog`.
    snapshot_every:
        Write a compacted snapshot (and compact covered segments) after
        every N accepted frames; ``0`` disables automatic snapshots (the
        ``SNAPSHOT`` wire op still triggers one on demand).
    """

    def __init__(
        self,
        data_dir=None,
        host: str = "127.0.0.1",
        port: int = 0,
        sketch_factory=None,
        interval_length: float = 1.0,
        retention_intervals: int = 64,
        max_segment_bytes: int = 4 * 1024 * 1024,
        snapshot_every: int = 0,
        fsync: bool = False,
    ) -> None:
        if snapshot_every < 0:
            raise IllegalArgumentError(
                f"snapshot_every must be non-negative, got {snapshot_every!r}"
            )
        self._host = host
        self._port = int(port)
        self._sketch_factory = sketch_factory
        self._interval_length = float(interval_length)
        self._retention_intervals = int(retention_intervals)
        self._snapshot_every = int(snapshot_every)
        self.state = ServiceState(
            sketch_factory=sketch_factory,
            interval_length=interval_length,
            retention_intervals=retention_intervals,
        )
        self.log: Optional[SegmentLog] = (
            SegmentLog(data_dir, max_segment_bytes=max_segment_bytes, fsync=fsync)
            if data_dir is not None
            else None
        )
        self.last_recovery: Optional[RecoveryReport] = None
        self._last_applied_sequence = 0
        self._frames_since_snapshot = 0
        self._bytes_received = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._connections: set = set()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #

    def recover(self) -> RecoveryReport:
        """Rebuild state from the newest snapshot plus the log tail.

        Intact records are applied in log order; records whose *payload*
        fails to decode despite a valid CRC (which disk corruption cannot
        produce, but a hostile log could) are counted as corrupt and
        skipped — recovery never raises on bad data and never loses intact
        records that follow it.
        """
        report = RecoveryReport()
        self.state = ServiceState(
            sketch_factory=self._sketch_factory,
            interval_length=self._interval_length,
            retention_intervals=self._retention_intervals,
        )
        self._last_applied_sequence = 0
        if self.log is None:
            self.last_recovery = report
            return report
        snapshot = self.log.latest_snapshot()
        if snapshot is not None:
            applied, payload = snapshot
            self.state = ServiceState.from_snapshot(
                payload,
                sketch_factory=self._sketch_factory,
                interval_length=self._interval_length,
                retention_intervals=self._retention_intervals,
            )
            report.snapshot_applied = applied
            self._last_applied_sequence = applied
        for record in self.log.replay(after=self._last_applied_sequence):
            try:
                self.state.apply_envelope_bytes(record.payload)
            except DeserializationError:
                report.corrupt_records += 1
                continue
            self._last_applied_sequence = record.sequence
            report.records_replayed += 1
        report.quarantined = list(self.log.last_replay.quarantined)
        self.last_recovery = report
        return report

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid once started)."""
        if self._server is None or not self._server.sockets:
            return (self._host, self._port)
        bound = self._server.sockets[0].getsockname()
        return (bound[0], bound[1])

    async def start(self) -> None:
        """Recover from the log (if any) and start accepting connections."""
        self.recover()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port
        )

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or :meth:`stop`) is called."""
        if self._stop_event is None:
            raise IllegalArgumentError("server is not started")
        await self._stop_event.wait()
        await self._shutdown()

    def request_stop(self) -> None:
        """Signal the serving loop to shut down (safe from the event loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        """Stop accepting connections and close the log."""
        self.request_stop()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        if self.log is not None:
            self.log.close()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        """Serve one client connection until EOF or a framing violation."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    message_type, payload = await protocol.read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except asyncio.CancelledError:
                    break  # server shutdown: close the connection quietly
                except DeserializationError:
                    # The stream itself is unframed garbage: reply once and
                    # drop the connection (resynchronization is impossible).
                    with contextlib.suppress(Exception):
                        writer.write(
                            protocol.encode_json_message(
                                protocol.MSG_ERROR,
                                {"status": "error", "kind": "DeserializationError",
                                 "message": "malformed message framing"},
                            )
                        )
                        await writer.drain()
                    break
                reply = self._dispatch(message_type, payload)
                writer.write(reply)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            if task is not None:
                self._connections.discard(task)
            # CancelledError is a BaseException: a task cancelled by shutdown
            # re-raises it from wait_closed(), so suppress it explicitly.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    def _dispatch(self, message_type: int, payload: bytes) -> bytes:
        """Route one request message to its handler; never raises."""
        try:
            if message_type == protocol.MSG_PUSH:
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_push(payload))
            if message_type == protocol.MSG_QUERY:
                body = protocol.decode_json_body(payload)
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_query(body))
            if message_type == protocol.MSG_STATS:
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_stats())
            if message_type == protocol.MSG_SNAPSHOT:
                return protocol.encode_json_message(protocol.MSG_OK, self._handle_snapshot())
            if message_type == protocol.MSG_PING:
                return protocol.encode_json_message(protocol.MSG_OK, {"status": "ok"})
            raise IllegalArgumentError(f"unsupported request type 0x{message_type:02x}")
        except ReproError as error:
            return protocol.encode_json_message(
                protocol.MSG_ERROR,
                {"status": "error", "kind": type(error).__name__, "message": str(error)},
            )
        except Exception as error:
            # A handler bug (or request shape the handlers did not
            # anticipate) must cost one ERROR reply, not the connection.
            return protocol.encode_json_message(
                protocol.MSG_ERROR,
                {
                    "status": "error",
                    "kind": "ServiceError",
                    "message": f"internal error: {type(error).__name__}: {error}",
                },
            )

    def _handle_push(self, payload: bytes) -> Dict[str, Any]:
        """Validate, dedup, persist, and apply one pushed envelope."""
        envelope = decode_push_envelope(payload, validate_frame=True)
        if envelope.sequence < 1:
            # Sequences are 1-based (the dedup watermark's zero state means
            # "nothing applied"); reject loudly rather than dedup silently.
            raise IllegalArgumentError(
                f"envelope sequence must be >= 1, got {envelope.sequence!r}"
            )
        self._bytes_received += len(payload)
        if self.state.is_duplicate(envelope.host, envelope.sequence):
            self.state.duplicates_rejected += 1
            return {
                "status": "ok",
                "duplicate": True,
                "host": envelope.host,
                "sequence": envelope.sequence,
                "series": 0,
            }
        if self.log is not None:
            self._last_applied_sequence = self.log.append(payload)
        series = self.state.apply(envelope)
        self._frames_since_snapshot += 1
        if self._snapshot_every and self._frames_since_snapshot >= self._snapshot_every:
            self._write_snapshot()
        return {
            "status": "ok",
            "duplicate": False,
            "host": envelope.host,
            "sequence": envelope.sequence,
            "series": series,
        }

    def _handle_query(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Answer a quantile query over the merged state or a time window."""
        try:
            metric = body["metric"]
            quantiles = body.get("quantiles", [0.5, 0.95, 0.99])
        except (KeyError, TypeError) as error:
            raise IllegalArgumentError(f"malformed query: {error}") from None
        if not isinstance(quantiles, list) or not quantiles:
            raise IllegalArgumentError("query quantiles must be a non-empty array")
        try:
            quantile_values = [float(quantile) for quantile in quantiles]
        except (TypeError, ValueError):
            raise IllegalArgumentError(
                f"query quantiles must be numbers, got {quantiles!r}"
            ) from None
        window_start = body.get("window_start")
        window_end = body.get("window_end")
        try:
            window_start = None if window_start is None else float(window_start)
            window_end = None if window_end is None else float(window_end)
        except (TypeError, ValueError):
            raise IllegalArgumentError(
                "query window_start/window_end must be numbers, got "
                f"{body.get('window_start')!r}/{body.get('window_end')!r}"
            ) from None
        values = self.state.quantiles(
            str(metric),
            quantile_values,
            tags=body.get("tags"),
            tag_filter=body.get("tag_filter"),
            window_start=window_start,
            window_end=window_end,
        )
        return {"status": "ok", "metric": metric, "quantiles": quantiles, "values": values}

    def _handle_stats(self) -> Dict[str, Any]:
        """The server's counters (state stats + wire/log bookkeeping)."""
        stats: Dict[str, Any] = {"status": "ok"}
        stats.update(self.state.stats())
        stats["bytes_received"] = self._bytes_received
        stats["durable"] = self.log is not None
        stats["last_applied_sequence"] = self._last_applied_sequence
        return stats

    def _handle_snapshot(self) -> Dict[str, Any]:
        """Write a compacted snapshot on demand (no-op without a log)."""
        if self.log is None:
            return {"status": "ok", "snapshot": None}
        path = self._write_snapshot()
        return {"status": "ok", "snapshot": path.name}

    def _write_snapshot(self):
        path = self.log.write_snapshot(
            self.state.to_snapshot(), applied=self._last_applied_sequence
        )
        self.log.compact(self._last_applied_sequence)
        self._frames_since_snapshot = 0
        return path


class ServerThread:
    """A running :class:`AggregationServer` on a background event loop."""

    def __init__(self, server: AggregationServer, thread: threading.Thread, loop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of the running server."""
        return self.server.address

    def stop(self) -> None:
        """Stop the server and join the background thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: the handle itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop the server."""
        self.stop()


def serve_in_thread(**kwargs) -> ServerThread:
    """Start an :class:`AggregationServer` on a daemon thread; returns a handle.

    Accepts the :class:`AggregationServer` constructor arguments.  The
    returned :class:`ServerThread` is a context manager whose ``address``
    is ready immediately (startup — including log recovery — completes
    before this function returns; a startup failure is re-raised here).
    """
    server = AggregationServer(**kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as error:  # startup failures surface to the caller
            failure.append(error)
            started.set()
            return
        started.set()
        await server.serve_until_stopped()

    def _runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="aggregation-server", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if failure:
        thread.join(timeout=5)
        raise failure[0]
    return ServerThread(server, thread, loop)
