"""Wire protocol of the aggregation service: framed messages + push envelopes.

The cross-process transport is deliberately simple: a TCP connection carries
a sequence of **length-prefixed messages**, each a fixed 7-byte header
followed by an opaque payload::

    magic    2 bytes   b"DM"
    type     1 byte    message type (below)
    length   4 bytes   unsigned little-endian payload length
    payload  length bytes

Requests (client -> server): ``PUSH`` (payload is a *push envelope*, below),
``QUERY``/``STATS``/``SNAPSHOT`` (payload is a UTF-8 JSON object, possibly
empty), and ``PING`` (empty payload).  Responses (server -> client): ``OK``,
``ERROR``, and ``OVERLOADED`` (the admission gate shed the request; the body
carries a ``retry_after`` hint in seconds), all carrying a UTF-8 JSON object.

A **push envelope** is the unit the service both receives on the wire and
persists verbatim in its segment log (:mod:`repro.service.segment_log`) —
the record envelope around a frame-v3 payload::

    magic           2 bytes   b"DP"
    version         varint    1
    host            varint length + UTF-8 bytes (producer identity)
    sequence        varint    per-host frame sequence number (1-based)
    interval_start  8 bytes   IEEE-754 little-endian float
    frame           varint length + frame-v3 bytes (:mod:`repro.serialization.frame`)

``(host, sequence)`` identifies a frame for deduplication: a client that
times out may safely retransmit, the server applies each identity at most
once (see :class:`~repro.service.state.ServiceState`).

Like every other decoder in the repository, both layers are fuzz-hardened:
truncated, bit-flipped, oversized, or otherwise adversarial bytes raise
:class:`~repro.exceptions.DeserializationError` — never ``IndexError`` or
``MemoryError`` from the internals.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import DeserializationError, IllegalArgumentError
from repro.serialization.encoding import VarintReader, encode_varint

MESSAGE_MAGIC = b"DM"
ENVELOPE_MAGIC = b"DP"
ENVELOPE_VERSION = 1

#: Message types (client -> server).
MSG_PUSH = 0x01
MSG_QUERY = 0x02
MSG_PING = 0x03
MSG_SNAPSHOT = 0x04
MSG_STATS = 0x05
#: Message types (server -> client).
MSG_OK = 0x10
MSG_ERROR = 0x11
#: The server shed the request at its admission gate.  The JSON body carries
#: ``kind``/``message`` like an ERROR reply plus a ``retry_after`` hint in
#: seconds — an explicit "healthy but at capacity, come back later" signal,
#: distinct from ERROR so clients can back off instead of failing.
MSG_OVERLOADED = 0x12

_KNOWN_TYPES = frozenset(
    (MSG_PUSH, MSG_QUERY, MSG_PING, MSG_SNAPSHOT, MSG_STATS, MSG_OK, MSG_ERROR, MSG_OVERLOADED)
)

#: Ceiling on one message payload.  A frame of 10k series at 1% alpha is a
#: few MB; anything beyond this is a corrupt length field or an attack.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Ceiling on a producer host identifier inside a push envelope.
MAX_HOST_BYTES = 1 << 12

_HEADER = struct.Struct("<2sBI")
_FLOAT = struct.Struct("<d")


def encode_message(message_type: int, payload: bytes = b"") -> bytes:
    """Serialize one wire message (header + payload)."""
    if message_type not in _KNOWN_TYPES:
        raise IllegalArgumentError(f"unknown message type 0x{message_type:02x}")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise IllegalArgumentError(
            f"message payload of {len(payload)} bytes exceeds the {MAX_MESSAGE_BYTES} limit"
        )
    return _HEADER.pack(MESSAGE_MAGIC, message_type, len(payload)) + payload


def decode_header(header: bytes, max_bytes: Optional[int] = None) -> Tuple[int, int]:
    """Validate a 7-byte message header; returns ``(type, payload_length)``.

    The declared payload length is checked *before* any payload bytes are
    read or buffered: a hostile or corrupt length prefix is rejected with
    :class:`DeserializationError` instead of attempting a multi-GB
    allocation.  ``max_bytes`` tightens the ceiling below the protocol-wide
    :data:`MAX_MESSAGE_BYTES` (servers cap inbound messages well under the
    absolute limit; replies are never larger than requests).
    """
    if len(header) != _HEADER.size:
        raise DeserializationError(
            f"message header must be {_HEADER.size} bytes, got {len(header)}"
        )
    magic, message_type, length = _HEADER.unpack(header)
    if magic != MESSAGE_MAGIC:
        raise DeserializationError("message does not start with the service magic bytes")
    if message_type not in _KNOWN_TYPES:
        raise DeserializationError(f"unknown message type 0x{message_type:02x}")
    limit = MAX_MESSAGE_BYTES if max_bytes is None else min(int(max_bytes), MAX_MESSAGE_BYTES)
    if length > limit:
        raise DeserializationError(
            f"message length {length} exceeds the {limit} limit"
        )
    return message_type, length


async def read_message(reader, max_bytes: Optional[int] = None) -> Tuple[int, bytes]:
    """Read one framed message from an :mod:`asyncio` stream reader.

    Returns ``(type, payload)``; raises :class:`DeserializationError` for a
    malformed header (including a length prefix above ``max_bytes``, checked
    before reading the payload) and ``asyncio.IncompleteReadError`` at a
    clean EOF.
    """
    header = await reader.readexactly(_HEADER.size)
    message_type, length = decode_header(header, max_bytes=max_bytes)
    payload = await reader.readexactly(length) if length else b""
    return message_type, payload


def read_message_blocking(sock: socket.socket, max_bytes: Optional[int] = None) -> Tuple[int, bytes]:
    """Read one framed message from a blocking socket.

    Returns ``(type, payload)``.  Raises :class:`DeserializationError` for a
    malformed header (including a length prefix above ``max_bytes``) or a
    connection that closes mid-message.
    """
    header = _recv_exactly(sock, _HEADER.size)
    message_type, length = decode_header(header, max_bytes=max_bytes)
    payload = _recv_exactly(sock, length) if length else b""
    return message_type, payload


def _recv_exactly(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise DeserializationError(
                f"connection closed with {remaining} of {length} message bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_json_message(message_type: int, body: Dict[str, Any]) -> bytes:
    """Serialize a JSON-bodied message (QUERY/STATS/OK/ERROR)."""
    return encode_message(message_type, json.dumps(body, sort_keys=True).encode("utf-8"))


def decode_json_body(payload: bytes) -> Dict[str, Any]:
    """Parse a JSON message body into a dict (DeserializationError on garbage)."""
    if not payload:
        return {}
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise DeserializationError(f"malformed JSON message body: {error}") from error
    if not isinstance(body, dict):
        raise DeserializationError("JSON message body must be an object")
    return body


@dataclass(frozen=True)
class PushEnvelope:
    """One decoded push envelope: producer identity plus the carried frame."""

    host: str
    sequence: int
    interval_start: float
    frame: bytes

    @property
    def identity(self) -> Tuple[str, int]:
        """The ``(host, sequence)`` deduplication identity."""
        return (self.host, self.sequence)


def encode_push_envelope(
    frame: bytes, host: str, sequence: int, interval_start: float = 0.0
) -> bytes:
    """Wrap a frame-v3 payload in the push/record envelope."""
    host_bytes = str(host).encode("utf-8")
    if not host_bytes:
        raise IllegalArgumentError("envelope host must be a non-empty string")
    if len(host_bytes) > MAX_HOST_BYTES:
        raise IllegalArgumentError(
            f"envelope host of {len(host_bytes)} bytes exceeds the {MAX_HOST_BYTES} limit"
        )
    if sequence < 1:
        raise IllegalArgumentError(f"envelope sequence must be >= 1, got {sequence!r}")
    frame = bytes(frame)
    return (
        ENVELOPE_MAGIC
        + encode_varint(ENVELOPE_VERSION)
        + encode_varint(len(host_bytes))
        + host_bytes
        + encode_varint(int(sequence))
        + _FLOAT.pack(float(interval_start))
        + encode_varint(len(frame))
        + frame
    )


def decode_push_envelope(payload: bytes, validate_frame: bool = False) -> PushEnvelope:
    """Decode a push envelope; optionally validate the embedded frame too.

    With ``validate_frame=True`` the embedded frame-v3 payload is fully
    decoded (and discarded) so that a well-formed envelope is also known to
    carry a well-formed frame — the server validates before persisting, so
    the segment log only ever stores frames that decode.

    Raises
    ------
    DeserializationError
        For any malformed envelope: wrong magic or version, oversized or
        truncated host/frame fields, non-finite interval, trailing bytes,
        or (when requested) a corrupt embedded frame.
    """
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise DeserializationError(
            f"push envelope must be bytes, got {type(payload).__name__}"
        )
    payload = bytes(payload)
    if payload[:2] != ENVELOPE_MAGIC:
        raise DeserializationError("payload does not start with the push-envelope magic")
    reader = VarintReader(payload[2:])
    version = reader.read_varint()
    if version != ENVELOPE_VERSION:
        raise DeserializationError(f"unsupported push-envelope version {version}")
    host_length = reader.read_varint()
    if host_length == 0 or host_length > MAX_HOST_BYTES:
        raise DeserializationError(f"envelope host length {host_length} is out of range")
    host_bytes = reader.read_bytes(host_length)
    try:
        host = host_bytes.decode("utf-8")
    except UnicodeDecodeError as error:
        raise DeserializationError("envelope host is not valid UTF-8") from error
    sequence = reader.read_varint()
    interval_start = reader.read_float()
    if interval_start != interval_start or interval_start in (float("inf"), float("-inf")):
        raise DeserializationError(f"envelope interval_start {interval_start!r} is not finite")
    frame_length = reader.read_varint()
    if frame_length > reader.remaining:
        raise DeserializationError(
            f"envelope frame length {frame_length} exceeds the remaining payload"
        )
    frame = reader.read_bytes(frame_length)
    if not reader.exhausted:
        raise DeserializationError(f"{reader.remaining} trailing bytes after the envelope")
    if validate_frame:
        from repro.serialization.frame import decode_frame

        decode_frame(frame)
    return PushEnvelope(host=host, sequence=sequence, interval_start=interval_start, frame=frame)


def request(
    sock: socket.socket, message_type: int, payload: bytes = b"", timeout: Optional[float] = None
) -> Tuple[int, bytes]:
    """Send one message on a blocking socket and read the single reply."""
    if timeout is not None:
        sock.settimeout(timeout)
    sock.sendall(encode_message(message_type, payload))
    return read_message_blocking(sock)
