"""Load generator: a simulated agent fleet hammering the real service.

This is the "millions of users" scenario from the ROADMAP run end to end:
``num_agents`` simulated :class:`~repro.monitoring.MetricAgent` hosts, each
fanning one metric out over ``series_per_agent`` tagged endpoint series,
flush one frame-v3 payload per interval and push it — through real push
envelopes, over a real TCP socket, into a real
:class:`~repro.service.server.AggregationServer` with (optionally) a real
segment log behind it.  ``push_threads`` concurrent
:class:`~repro.service.ServiceClient` connections drive the pushes, so the
measured frames/sec and values/sec are genuine end-to-end numbers: envelope
encode + socket + server decode + log append + registry merge + ACK.

The run is self-verifying: afterwards the server's total count must equal
the values generated, and the server's quantiles must be *identical* to a
local reference registry fed the same frames (full mergeability across the
process boundary, paper Section 2.1).  :func:`run_load_generator` returns
the measurements as a plain dict; the CLI (``repro load-gen``) and
``benchmarks/test_service_throughput.py`` write them into
``BENCH_service.json`` using the shared artifact schema
(:mod:`repro.evaluation.artifacts`).
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.ddsketch import DDSketch
from repro.exceptions import IllegalArgumentError
from repro.registry import SeriesKey, SketchRegistry
from repro.service.client import ServiceClient
from repro.service.server import serve_in_thread

#: The metric every simulated agent reports.
METRIC = "web.request.latency"


def build_fleet_frames(
    num_agents: int,
    series_per_agent: int,
    num_intervals: int,
    values_per_interval: int,
    relative_accuracy: float = 0.01,
    seed: int = 0,
) -> Tuple[List[Tuple[str, float, bytes]], int]:
    """Pre-build every frame the fleet will push.

    Returns ``(frames, total_values)`` where each frame is a
    ``(host, interval_start, payload)`` triple.  Frame building is kept out
    of the push-timing window so the benchmark measures the service, not
    the generator.  Deterministic in ``seed`` — two calls build
    byte-identical frames, which is how the multi-process e2e test's parent
    reconstructs what its children pushed.
    """
    if min(num_agents, series_per_agent, num_intervals, values_per_interval) < 1:
        raise IllegalArgumentError("fleet dimensions must all be positive")
    frames: List[Tuple[str, float, bytes]] = []
    total_values = 0
    keys = [
        SeriesKey(METRIC, (("endpoint", f"/e{index:04d}"),))
        for index in range(series_per_agent)
    ]
    for agent_index in range(num_agents):
        host = f"host-{agent_index:04d}"
        rng = np.random.default_rng(seed * 1_000_003 + agent_index)
        registry = SketchRegistry(
            sketch_factory=lambda: DDSketch(relative_accuracy=relative_accuracy)
        )
        for interval in range(num_intervals):
            group_indices = rng.integers(0, series_per_agent, values_per_interval)
            values = rng.lognormal(0.0, 1.5, values_per_interval)
            registry.ingest_grouped(keys, group_indices, values)
            frames.append((host, float(interval), registry.flush_frame()))
            total_values += values_per_interval
    return frames, total_values


def reference_registry(frames: List[Tuple[str, float, bytes]]) -> SketchRegistry:
    """The uncrashed, in-process reference: every frame merged locally."""
    reference = SketchRegistry()
    for _, _, payload in frames:
        reference.merge_frame(payload)
    return reference


def run_load_generator(
    num_agents: int = 100,
    series_per_agent: int = 20,
    num_intervals: int = 4,
    values_per_interval: int = 2_000,
    push_threads: int = 4,
    relative_accuracy: float = 0.01,
    seed: int = 0,
    data_dir: Optional[str] = None,
    durable: bool = True,
    snapshot_every: int = 0,
    retention_intervals: int = 64,
) -> Dict[str, Any]:
    """Run the fleet against a freshly started server; returns the metrics.

    With ``durable=True`` (the default) the server persists every accepted
    frame to a segment log (in ``data_dir`` or a temporary directory), so
    the measured throughput includes the write-ahead cost.  The returned
    dict is one ``metrics`` section in the shared BENCH schema; it also
    records that the server's answers matched the local reference exactly
    (``reference_match``) — a failed match raises instead of reporting.
    """
    frames, total_values = build_fleet_frames(
        num_agents,
        series_per_agent,
        num_intervals,
        values_per_interval,
        relative_accuracy=relative_accuracy,
        seed=seed,
    )
    bytes_on_wire = sum(len(payload) for _, _, payload in frames)
    temp_dir: Optional[tempfile.TemporaryDirectory] = None
    if durable and data_dir is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
        data_dir = temp_dir.name
    try:
        with serve_in_thread(
            data_dir=data_dir if durable else None,
            snapshot_every=snapshot_every,
            retention_intervals=retention_intervals,
        ) as handle:
            host, port = handle.address
            elapsed = _push_all(frames, host, port, push_threads)
            with ServiceClient(host, port) as client:
                stats = client.stats()
                quantiles = (0.5, 0.95, 0.99)
                served = client.query_quantiles(METRIC, quantiles)["values"]
        reference = reference_registry(frames)
        expected = reference.quantiles(METRIC, quantiles)
        if stats["total_count"] != float(total_values):
            raise IllegalArgumentError(
                f"service lost data: {stats['total_count']} != {total_values}"
            )
        if served != expected:
            raise IllegalArgumentError(
                f"service quantiles diverged from the reference: {served} != {expected}"
            )
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()
    return {
        "agents": num_agents,
        "series_per_agent": series_per_agent,
        "intervals": num_intervals,
        "frames": len(frames),
        "values": total_values,
        "bytes_on_wire": bytes_on_wire,
        "push_threads": push_threads,
        "durable": durable,
        "seconds": elapsed,
        "frames_per_sec": len(frames) / elapsed,
        "values_per_sec": total_values / elapsed,
        "mb_per_sec": bytes_on_wire / elapsed / 1e6,
        "reference_match": True,
        "p99": served[2],
    }


def _push_all(
    frames: List[Tuple[str, float, bytes]], host: str, port: int, push_threads: int
) -> float:
    """Push every frame through N concurrent clients; returns the wall time."""
    if push_threads < 1:
        raise IllegalArgumentError(f"push_threads must be positive, got {push_threads!r}")
    push_threads = min(push_threads, len(frames))
    # Partition whole hosts, not individual frames: each client assigns
    # per-host sequence numbers, so one host's frames must flow through one
    # client or the server would deduplicate colliding (host, sequence)
    # identities from different clients.
    hosts = sorted({host for host, _, _ in frames})
    host_to_shard = {host: index % push_threads for index, host in enumerate(hosts)}
    shards: List[List[Tuple[str, float, bytes]]] = [[] for _ in range(push_threads)]
    for frame in frames:
        shards[host_to_shard[frame[0]]].append(frame)
    shards = [shard for shard in shards if shard]
    errors: List[BaseException] = []

    def _worker(shard: List[Tuple[str, float, bytes]]) -> None:
        try:
            with ServiceClient(host, port) as client:
                for agent_host, interval_start, payload in shard:
                    client.push_frame(payload, host=agent_host, interval_start=interval_start)
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=_worker, args=(shard,), daemon=True) for shard in shards
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return max(elapsed, 1e-9)
