"""Load generator: a simulated agent fleet hammering the real service.

This is the "millions of users" scenario from the ROADMAP run end to end:
``num_agents`` simulated :class:`~repro.monitoring.MetricAgent` hosts, each
fanning one metric out over ``series_per_agent`` tagged endpoint series,
flush one frame-v3 payload per interval and push it — through real push
envelopes, over a real TCP socket, into a real
:class:`~repro.service.server.AggregationServer` with (optionally) a real
segment log behind it.  ``push_threads`` concurrent
:class:`~repro.service.ServiceClient` connections drive the pushes, so the
measured frames/sec and values/sec are genuine end-to-end numbers: envelope
encode + socket + server decode + log append + registry merge + ACK.

The run is self-verifying: afterwards the server's total count must equal
the values generated, and the server's quantiles must be *identical* to a
local reference registry fed the same frames (full mergeability across the
process boundary, paper Section 2.1).  :func:`run_load_generator` returns
the measurements as a plain dict; the CLI (``repro load-gen``) and
``benchmarks/test_service_throughput.py`` write them into
``BENCH_service.json`` using the shared artifact schema
(:mod:`repro.evaluation.artifacts`).

:func:`run_overload_benchmark` is the degraded-mode companion: it throttles
the segment log to a known append capacity, drives the fleet at 1x and 2x
the admission gate, and measures what graceful degradation costs — shed
rate, retry counts, push latency percentiles, ping latency under overload —
plus a server-outage phase where agents spool frames to disk and replay
them after a restart.  Results land in ``BENCH_overload.json`` (CLI:
``repro load-gen --overload``).
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import kernel
from repro.core.ddsketch import DDSketch
from repro.exceptions import IllegalArgumentError, ServiceError
from repro.registry import SeriesKey, SketchRegistry
from repro.service.client import ServiceClient
from repro.service.server import serve_in_thread
from repro.service.spool import FrameSpool

#: The metric every simulated agent reports.
METRIC = "web.request.latency"


def build_fleet_frames(
    num_agents: int,
    series_per_agent: int,
    num_intervals: int,
    values_per_interval: int,
    relative_accuracy: float = 0.01,
    seed: int = 0,
) -> Tuple[List[Tuple[str, float, bytes]], int]:
    """Pre-build every frame the fleet will push.

    Returns ``(frames, total_values)`` where each frame is a
    ``(host, interval_start, payload)`` triple.  Frame building is kept out
    of the push-timing window so the benchmark measures the service, not
    the generator.  Deterministic in ``seed`` — two calls build
    byte-identical frames, which is how the multi-process e2e test's parent
    reconstructs what its children pushed.
    """
    if min(num_agents, series_per_agent, num_intervals, values_per_interval) < 1:
        raise IllegalArgumentError("fleet dimensions must all be positive")
    frames: List[Tuple[str, float, bytes]] = []
    total_values = 0
    keys = [
        SeriesKey(METRIC, (("endpoint", f"/e{index:04d}"),))
        for index in range(series_per_agent)
    ]
    for agent_index in range(num_agents):
        host = f"host-{agent_index:04d}"
        rng = np.random.default_rng(seed * 1_000_003 + agent_index)
        registry = SketchRegistry(
            sketch_factory=lambda: DDSketch(relative_accuracy=relative_accuracy)
        )
        for interval in range(num_intervals):
            group_indices = rng.integers(0, series_per_agent, values_per_interval)
            values = rng.lognormal(0.0, 1.5, values_per_interval)
            registry.ingest_grouped(keys, group_indices, values)
            frames.append((host, float(interval), registry.flush_frame()))
            total_values += values_per_interval
    return frames, total_values


def reference_registry(frames: List[Tuple[str, float, bytes]]) -> SketchRegistry:
    """The uncrashed, in-process reference: every frame merged locally."""
    reference = SketchRegistry()
    for _, _, payload in frames:
        reference.merge_frame(payload)
    return reference


def run_load_generator(
    num_agents: int = 100,
    series_per_agent: int = 20,
    num_intervals: int = 4,
    values_per_interval: int = 2_000,
    push_threads: int = 4,
    relative_accuracy: float = 0.01,
    seed: int = 0,
    data_dir: Optional[str] = None,
    durable: bool = True,
    snapshot_every: int = 0,
    retention_intervals: int = 64,
) -> Dict[str, Any]:
    """Run the fleet against a freshly started server; returns the metrics.

    With ``durable=True`` (the default) the server persists every accepted
    frame to a segment log (in ``data_dir`` or a temporary directory), so
    the measured throughput includes the write-ahead cost.  The returned
    dict is one ``metrics`` section in the shared BENCH schema; it also
    records that the server's answers matched the local reference exactly
    (``reference_match``) — a failed match raises instead of reporting.
    """
    frames, total_values = build_fleet_frames(
        num_agents,
        series_per_agent,
        num_intervals,
        values_per_interval,
        relative_accuracy=relative_accuracy,
        seed=seed,
    )
    bytes_on_wire = sum(len(payload) for _, _, payload in frames)
    temp_dir: Optional[tempfile.TemporaryDirectory] = None
    if durable and data_dir is None:
        temp_dir = tempfile.TemporaryDirectory(prefix="repro-loadgen-")
        data_dir = temp_dir.name
    try:
        with serve_in_thread(
            data_dir=data_dir if durable else None,
            snapshot_every=snapshot_every,
            retention_intervals=retention_intervals,
        ) as handle:
            host, port = handle.address
            elapsed = _push_all(frames, host, port, push_threads)
            with ServiceClient(host, port) as client:
                stats = client.stats()
                quantiles = (0.5, 0.95, 0.99)
                served = client.query_quantiles(METRIC, quantiles)["values"]
        reference = reference_registry(frames)
        expected = reference.quantiles(METRIC, quantiles)
        if stats["total_count"] != float(total_values):
            raise IllegalArgumentError(
                f"service lost data: {stats['total_count']} != {total_values}"
            )
        if served != expected:
            raise IllegalArgumentError(
                f"service quantiles diverged from the reference: {served} != {expected}"
            )
    finally:
        if temp_dir is not None:
            temp_dir.cleanup()
    return {
        "agents": num_agents,
        "series_per_agent": series_per_agent,
        "intervals": num_intervals,
        "frames": len(frames),
        "values": total_values,
        "bytes_on_wire": bytes_on_wire,
        "push_threads": push_threads,
        "durable": durable,
        "seconds": elapsed,
        "frames_per_sec": len(frames) / elapsed,
        "values_per_sec": total_values / elapsed,
        "mb_per_sec": bytes_on_wire / elapsed / 1e6,
        "reference_match": True,
        "p99": served[2],
        "kernel_backend": kernel.active_backend(),
    }


def _push_all(
    frames: List[Tuple[str, float, bytes]], host: str, port: int, push_threads: int
) -> float:
    """Push every frame through N concurrent clients; returns the wall time."""
    if push_threads < 1:
        raise IllegalArgumentError(f"push_threads must be positive, got {push_threads!r}")
    push_threads = min(push_threads, len(frames))
    # Partition whole hosts, not individual frames: each client assigns
    # per-host sequence numbers, so one host's frames must flow through one
    # client or the server would deduplicate colliding (host, sequence)
    # identities from different clients.
    hosts = sorted({host for host, _, _ in frames})
    host_to_shard = {host: index % push_threads for index, host in enumerate(hosts)}
    shards: List[List[Tuple[str, float, bytes]]] = [[] for _ in range(push_threads)]
    for frame in frames:
        shards[host_to_shard[frame[0]]].append(frame)
    shards = [shard for shard in shards if shard]
    errors: List[BaseException] = []

    def _worker(shard: List[Tuple[str, float, bytes]]) -> None:
        try:
            with ServiceClient(host, port) as client:
                for agent_host, interval_start, payload in shard:
                    client.push_frame(payload, host=agent_host, interval_start=interval_start)
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=_worker, args=(shard,), daemon=True) for shard in shards
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return max(elapsed, 1e-9)


def _throttled_file_factory(delay: float):
    """A segment-log ``file_factory`` that sleeps ``delay`` per write.

    Gives the overload benchmark a *known* append capacity (roughly
    ``1 / delay`` frames/sec through the single-writer executor) so "1x"
    and "2x admission capacity" mean the same thing on any machine.
    """

    class _ThrottledFile:
        def __init__(self, raw) -> None:
            self._raw = raw

        def write(self, data: bytes) -> int:
            time.sleep(delay)
            return self._raw.write(data)

        def __getattr__(self, name):
            return getattr(self._raw, name)

    def _open(path, mode):
        return _ThrottledFile(open(path, mode))

    return _open


def _relabel_hosts(
    frames: List[Tuple[str, float, bytes]], prefix: str
) -> List[Tuple[str, float, bytes]]:
    """Prefix every frame's host so two phases never collide on dedup
    identities (each phase's clients restart per-host sequences at 1)."""
    return [(f"{prefix}-{host}", interval, payload) for host, interval, payload in frames]


def _push_all_timed(
    frames: List[Tuple[str, float, bytes]],
    host: str,
    port: int,
    push_threads: int,
    **client_kwargs: Any,
) -> Tuple[float, "np.ndarray", Dict[str, int]]:
    """Like :func:`_push_all` but records per-push latency and the summed
    client resilience counters (overload replies seen, retries, …)."""
    push_threads = min(max(push_threads, 1), len(frames))
    hosts = sorted({frame_host for frame_host, _, _ in frames})
    host_to_shard = {frame_host: index % push_threads for index, frame_host in enumerate(hosts)}
    shards: List[List[Tuple[str, float, bytes]]] = [[] for _ in range(push_threads)]
    for frame in frames:
        shards[host_to_shard[frame[0]]].append(frame)
    shards = [shard for shard in shards if shard]
    latencies: List[List[float]] = [[] for _ in shards]
    counters: Dict[str, int] = {}
    counters_lock = threading.Lock()
    errors: List[BaseException] = []

    def _worker(index: int, shard: List[Tuple[str, float, bytes]]) -> None:
        try:
            with ServiceClient(host, port, **client_kwargs) as client:
                for agent_host, interval_start, payload in shard:
                    begin = time.perf_counter()
                    client.push_frame(payload, host=agent_host, interval_start=interval_start)
                    latencies[index].append(time.perf_counter() - begin)
                with counters_lock:
                    for key, value in client.counters.items():
                        counters[key] = counters.get(key, 0) + value
        except BaseException as error:
            errors.append(error)

    threads = [
        threading.Thread(target=_worker, args=(index, shard), daemon=True)
        for index, shard in enumerate(shards)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - start, 1e-9)
    if errors:
        raise errors[0]
    return elapsed, np.concatenate([np.asarray(shard) for shard in latencies]), counters


def _overload_phase_metrics(
    label: str,
    frames: List[Tuple[str, float, bytes]],
    elapsed: float,
    latencies: "np.ndarray",
    counters: Dict[str, int],
    shed_delta: int,
) -> Dict[str, Any]:
    """One BENCH section for a push phase: throughput, shedding, latency."""
    attempts = len(frames) + counters.get("overloads", 0)
    return {
        "load": label,
        "frames": len(frames),
        "seconds": elapsed,
        "frames_per_sec": len(frames) / elapsed,
        "shed_replies": counters.get("overloads", 0),
        "shed_rate": counters.get("overloads", 0) / max(attempts, 1),
        "server_pushes_shed": shed_delta,
        "client_retries": counters.get("retries", 0),
        "push_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
        "push_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
    }


def run_overload_benchmark(
    num_frames: int = 160,
    values_per_frame: int = 100,
    series_per_agent: int = 5,
    max_inflight_pushes: int = 4,
    write_delay: float = 0.002,
    overload_retry_after: float = 0.01,
    spool_intervals: int = 25,
    relative_accuracy: float = 0.01,
    seed: int = 0,
) -> Dict[str, Dict[str, Any]]:
    """Measure graceful degradation under overload and across an outage.

    Three self-verifying phases against one durable server whose segment
    log is throttled to a known append capacity (``1 / write_delay``
    frames/sec through the single-writer executor):

    1. ``capacity_1x`` — exactly ``max_inflight_pushes`` concurrent clients
       (the admission gate stays open): baseline throughput and latency.
    2. ``capacity_2x`` — twice as many clients: the gate sheds the excess
       with OVERLOADED replies, clients back off and retry, and a prober
       measures ping latency to show the event loop never wedges.
    3. ``outage_spool`` — an agent with a :class:`~repro.service.FrameSpool`
       keeps flushing while the server is down, then replays the spool into
       the restarted (recovered) server.

    Raises when any frame is lost — the returned sections (keyed like the
    BENCH schema) only ever describe a run in which ``frames_applied`` on
    the server equals every frame the fleet produced.
    """
    if spool_intervals < 1:
        raise IllegalArgumentError(
            f"spool_intervals must be positive, got {spool_intervals!r}"
        )
    base_frames, _ = build_fleet_frames(
        num_agents=max(2 * max_inflight_pushes, 2),
        series_per_agent=series_per_agent,
        num_intervals=max(num_frames // max(2 * max_inflight_pushes, 2), 1),
        values_per_interval=values_per_frame,
        relative_accuracy=relative_accuracy,
        seed=seed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-overload-") as data_dir:
        handle = serve_in_thread(
            data_dir=data_dir,
            snapshot_every=0,
            max_inflight_pushes=max_inflight_pushes,
            overload_retry_after=overload_retry_after,
            log_file_factory=_throttled_file_factory(write_delay),
        )
        sections: Dict[str, Dict[str, Any]] = {}
        total_expected = 0
        try:
            host, port = handle.address
            retry_kwargs = {
                "timeout": 10.0,
                "retries": 32,
                "backoff_base": overload_retry_after,
                "backoff_cap": 0.1,
            }
            for label, thread_factor in (("1x", 1), ("2x", 2)):
                frames = _relabel_hosts(base_frames, f"c{thread_factor}")
                total_expected += len(frames)
                with ServiceClient(host, port) as observer:
                    shed_before = observer.stats()["pushes_shed"]
                ping_latencies: List[float] = []
                stop_probe = threading.Event()

                def _probe() -> None:
                    with ServiceClient(host, port, timeout=5.0) as prober:
                        while not stop_probe.is_set():
                            begin = time.perf_counter()
                            prober.ping()
                            ping_latencies.append(time.perf_counter() - begin)
                            time.sleep(0.01)

                prober_thread = threading.Thread(target=_probe, daemon=True)
                prober_thread.start()
                try:
                    elapsed, latencies, counters = _push_all_timed(
                        frames,
                        host,
                        port,
                        push_threads=thread_factor * max_inflight_pushes,
                        **retry_kwargs,
                    )
                finally:
                    stop_probe.set()
                    prober_thread.join(timeout=5)
                with ServiceClient(host, port) as observer:
                    shed_after = observer.stats()["pushes_shed"]
                section = _overload_phase_metrics(
                    label, frames, elapsed, latencies, counters, shed_after - shed_before
                )
                if ping_latencies:
                    section["ping_p99_ms"] = float(np.percentile(ping_latencies, 99)) * 1e3
                sections[f"capacity_{label}"] = section

            sections["outage_spool"] = _run_outage_spool_phase(
                handle, data_dir, spool_intervals, relative_accuracy
            )
            total_expected += sections["outage_spool"]["frames_produced"]
            with ServiceClient(host, port) as verifier:
                applied = verifier.stats()["frames_applied"]
            if applied != total_expected:
                raise IllegalArgumentError(
                    f"overload run lost frames: {applied} != {total_expected}"
                )
            for section in sections.values():
                section["no_frame_lost"] = True
        finally:
            replacement = getattr(handle, "replacement", None)
            if replacement is not None:
                replacement.stop()
            handle.stop()
    return sections


def _run_outage_spool_phase(
    handle, data_dir: str, spool_intervals: int, relative_accuracy: float
) -> Dict[str, Any]:
    """Stop the server mid-run, spool flushes to disk, replay after restart.

    Returns the phase's BENCH section; the caller folds
    ``frames_produced`` into its global conservation check.  The server in
    ``handle`` is stopped and a fresh one is started on the same port and
    data directory — ``handle`` itself is left stopped (its ``stop`` is
    idempotent), and the restarted server is swapped into the caller's
    scope via the returned handle attribute on ``handle.replacement``.
    """
    from repro.monitoring import MetricAgent

    host, port = handle.address
    agent = MetricAgent(
        host="spool-agent",
        sketch_factory=lambda: DDSketch(relative_accuracy=relative_accuracy),
    )
    rng = np.random.default_rng(7)
    produced = 0
    with tempfile.TemporaryDirectory(prefix="repro-spool-") as spool_dir:
        with FrameSpool(spool_dir) as spool:
            with ServiceClient(host, port, timeout=5.0, retries=0) as client:
                # A couple of healthy flushes, then the outage.
                for interval in range(2):
                    agent.record_batch("web.request.latency", rng.lognormal(0.0, 1.5, 50))
                    agent.push_frames(client, interval_start=float(interval), spool=spool)
                    produced += 1
                handle.stop()
                spooled_acks = 0
                for interval in range(2, 2 + spool_intervals):
                    agent.record_batch("web.request.latency", rng.lognormal(0.0, 1.5, 50))
                    acks = agent.push_frames(client, interval_start=float(interval), spool=spool)
                    produced += 1
                    spooled_acks += sum(1 for ack in acks if ack["status"] == "spooled")
                pending_during_outage = spool.pending
                # Restart on the same port with the same data directory: the
                # server recovers from its log, then the spool drains into it.
                replacement = serve_in_thread(data_dir=data_dir, snapshot_every=0, port=port)
                handle.replacement = replacement
                begin = time.perf_counter()
                deadline = begin + 60.0
                while spool.pending:
                    try:
                        spool.drain(client.push_envelope)
                    except ServiceError:
                        time.sleep(0.05)
                    if time.perf_counter() > deadline:
                        raise IllegalArgumentError("spool failed to drain after restart")
                drain_seconds = time.perf_counter() - begin
                counters = spool.counters
                return {
                    "frames_produced": produced,
                    "frames_spooled": counters["frames_spooled"],
                    "spooled_during_outage": pending_during_outage,
                    "spooled_acks": spooled_acks,
                    "frames_recovered": counters["frames_drained"],
                    "frames_dropped": counters["frames_dropped"],
                    "pending_after_drain": spool.pending,
                    "drain_seconds": drain_seconds,
                }
