"""Cross-process aggregation service built on frame-v3 mergeability.

This package promotes the repository from a library to a deployable system:
a long-running :class:`AggregationServer` accepts multi-sketch wire frames
from any number of :class:`~repro.monitoring.MetricAgent` processes over a
length-prefixed socket protocol, persists every accepted frame to a
crash-recoverable :class:`SegmentLog` (CRC-checked records, size-based
segment rotation, compacted snapshots), and replays to a **bit-exact**
registry state after a crash or restart — the paper's full-mergeability
claim (Section 2.1) carried across process boundaries and crash/replay
cycles.

Layers, bottom up:

* :mod:`repro.service.protocol` — wire messages and the push/record
  envelope around frame v3;
* :mod:`repro.service.segment_log` — the append-only durable log with
  quarantine-on-corruption replay;
* :mod:`repro.service.state` — merged registry + windowed retention +
  ``(host, sequence)`` deduplication;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the asyncio
  server (admission gate, connection deadlines, single-writer durable
  appends, graceful drain) and the blocking client (jittered backoff,
  deadline budget, circuit breaker);
* :mod:`repro.service.spool` — the agent-side store-and-forward disk spool
  that buffers envelopes across server outages under a byte budget;
* :mod:`repro.service.loadgen` — the agent-fleet load generator emitting
  ``BENCH_service.json`` and ``BENCH_overload.json``.

Start one in-process and push to it::

    >>> import numpy as np, tempfile
    >>> from repro import SketchRegistry
    >>> from repro.service import ServiceClient, serve_in_thread
    >>> registry = SketchRegistry()
    >>> registry.add_batch("latency", np.array([1.0, 2.0, 3.0]))
    >>> with serve_in_thread(data_dir=tempfile.mkdtemp()) as server:
    ...     with ServiceClient(*server.address) as client:
    ...         ack = client.push_frame(registry.flush_frame(), host="docs")
    ...         p50 = client.query_quantiles("latency", [0.5])["values"][0]
    >>> ack["status"], ack["series"]
    ('ok', 1)
"""

from repro.service.client import ServiceClient
from repro.service.protocol import (
    PushEnvelope,
    decode_push_envelope,
    encode_push_envelope,
)
from repro.service.segment_log import (
    LogRecord,
    QuarantineEvent,
    ReplayStats,
    SegmentLog,
)
from repro.service.server import (
    AggregationServer,
    RecoveryReport,
    ServerThread,
    serve_in_thread,
)
from repro.service.spool import FrameSpool
from repro.service.state import ServiceState

__all__ = [
    "AggregationServer",
    "FrameSpool",
    "LogRecord",
    "PushEnvelope",
    "QuarantineEvent",
    "RecoveryReport",
    "ReplayStats",
    "SegmentLog",
    "ServerThread",
    "ServiceClient",
    "ServiceState",
    "decode_push_envelope",
    "encode_push_envelope",
    "serve_in_thread",
]
